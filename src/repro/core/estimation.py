"""Steady-state estimation of candidate task mappings (paper section 3.3).

Before moving a task, the LBT module predicts what the market would look
like *after* the move settles: per-task demand (from the off-line profile
when the core type changes), supply (demand-limited, or priority-
proportional when the cluster saturates), price (Equation 2's recursion
``P_{Z+1} = P_Z + P_Z * delta`` per V-F level), and from those the two
comparison metrics:

* ``perf(M)`` -- the priority-lexicographic ordering over supply/demand
  ratios, and
* ``spend(M)`` -- the aggregate steady-state bids, a proxy for power.

A candidate mapping is always compared against the current mapping
*evaluated over the same set of affected clusters*: bids and ratios of
untouched clusters are identical in both mappings and cancel out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .market import Market

#: demand estimator: (task_id, cluster_id) -> steady-state demand in PUs.
DemandLookup = Callable[[str, str], float]

_EPS = 1e-9


@dataclass
class MappingEstimate:
    """Predicted steady state for one (possibly hypothetical) mapping."""

    ratios: Dict[str, float]  #: capped supply/demand ratio per affected task
    bids: Dict[str, float]  #: steady-state bid per affected task
    levels: Dict[str, int]  #: required V-F level per affected cluster
    spend: float = field(init=False)

    def __post_init__(self) -> None:
        self.spend = sum(self.bids.values())

    @property
    def all_satisfied(self) -> bool:
        return all(r >= 1.0 - _EPS for r in self.ratios.values())

    def unsatisfied_tasks(self) -> List[str]:
        return [t for t, r in self.ratios.items() if r < 1.0 - _EPS]


def perf_improves(
    current: Dict[str, float],
    candidate: Dict[str, float],
    priorities: Dict[str, int],
) -> bool:
    """``perf(M') > perf(M)`` per the paper's definition.

    True iff some task's supply/demand ratio improves while every task of
    strictly higher priority keeps a ratio at least as good.
    """
    for task_id, new_ratio in candidate.items():
        if new_ratio > current.get(task_id, 0.0) + _EPS:
            if all(
                candidate[other] >= current.get(other, 0.0) - _EPS
                for other, prio in priorities.items()
                if other in candidate and prio > priorities[task_id]
            ):
                return True
    return False


def perf_equal(current: Dict[str, float], candidate: Dict[str, float]) -> bool:
    return set(current) == set(candidate) and all(
        abs(candidate[t] - current[t]) <= _EPS for t in current
    )


def perf_not_worse(
    current: Dict[str, float],
    candidate: Dict[str, float],
    priorities: Dict[str, int],
) -> bool:
    """``perf(M') >= perf(M)``: strictly better or equal."""
    return perf_equal(current, candidate) or perf_improves(
        current, candidate, priorities
    )


#: energy model: (cluster_id, level_index) -> watts per PU at full load.
EnergyCostLookup = Callable[[str, int], float]


class SteadyStateEstimator:
    """Evaluates hypothetical mappings against the live market state.

    Args:
        market: The live market.
        demand_lookup: Cross-core-type demand estimator (off-line profile).
        energy_cost_lookup: Optional watts-per-PU model per cluster and
            V-F level.  When present, estimated prices are weighted by the
            cluster's energy cost so that ``spend`` comparisons reflect
            the heterogeneity ("migration of the tasks to the most
            efficient cluster").  On the real platform the chip agent's
            inverse-power allowance distribution pushes market prices
            toward exactly this shape; the simulator encodes the
            steady-state result directly (documented substitution).
    """

    def __init__(
        self,
        market: Market,
        demand_lookup: DemandLookup,
        energy_cost_lookup: Optional[EnergyCostLookup] = None,
    ):
        self._market = market
        self._demand = demand_lookup
        self._energy_cost = energy_cost_lookup

    @property
    def energy_aware(self) -> bool:
        """Whether spend estimates reflect per-cluster energy costs."""
        return self._energy_cost is not None

    # -- price estimation -----------------------------------------------------
    def _average_price_per_pu(self) -> float:
        """Market-wide average price, the fallback for priceless clusters."""
        total_bids = sum(agent.bid for agent in self._market.tasks.values())
        total_supply = sum(
            cluster.supply
            for cluster in self._market.clusters.values()
            if self._market.tasks_on_cluster(cluster.cluster_id)
        )
        if total_supply <= 0.0:
            return self._market.config.bmin
        return total_bids / total_supply

    def estimate_price(self, cluster_id: str, target_level: int) -> float:
        """Steady-state price per PU on ``cluster_id`` at ``target_level``.

        With an energy model: the chip-wide average price re-weighted by
        the cluster's watts-per-PU at the target level, relative to the
        chip's mean energy cost -- the price structure the allowance
        feedback converges to on real hardware.

        Without one (stand-alone market tests, synthetic chips): Equation
        2's recursion from the current price -- moving up one V-F level
        inflates the price by the tolerance factor (``P_{Z+1} = P_Z + P_Z
        * delta``), moving down deflates it symmetrically.
        """
        cluster = self._market.clusters[cluster_id]
        if self._energy_cost is not None:
            avg_price = self._average_price_per_pu()
            mean_cost = self._mean_energy_cost()
            cost = self._energy_cost(cluster_id, target_level)
            if mean_cost > 0.0 and cost > 0.0:
                return max(avg_price * cost / mean_cost, 0.0)
        constrained = self._market.constrained_core(cluster_id)
        if constrained is not None and constrained.price > 0.0:
            price = constrained.price
        else:
            price = self._average_price_per_pu()
        delta = self._market.config.tolerance
        steps = target_level - cluster.level_index
        if steps >= 0:
            price *= (1.0 + delta) ** steps
        else:
            price *= (1.0 - delta) ** (-steps)
        return max(price, 0.0)

    def _mean_energy_cost(self) -> float:
        """Mean watts-per-PU across clusters at their current levels."""
        assert self._energy_cost is not None
        costs = [
            self._energy_cost(cluster_id, cluster.level_index)
            for cluster_id, cluster in self._market.clusters.items()
        ]
        costs = [c for c in costs if c > 0.0]
        if not costs:
            return 0.0
        return sum(costs) / len(costs)

    # -- mapping evaluation -----------------------------------------------------
    def evaluate_current(
        self, cluster_ids: Optional[Iterable[str]] = None
    ) -> MappingEstimate:
        """Steady-state estimate of the mapping as it stands."""
        if cluster_ids is None:
            cluster_ids = [
                cid
                for cid in self._market.clusters
                if self._market.tasks_on_cluster(cid)
            ]
        return self._evaluate(set(cluster_ids), moves={})

    def evaluate_move(
        self, task_id: str, core_id: str
    ) -> Tuple[MappingEstimate, MappingEstimate]:
        """(current, candidate) estimates for moving one task.

        Both estimates cover exactly the source and destination clusters,
        so their ``spend`` and ``ratios`` are directly comparable.
        """
        market = self._market
        if task_id not in market.tasks:
            raise KeyError(f"unknown task {task_id}")
        if core_id not in market.cores:
            raise KeyError(f"unknown core {core_id}")
        affected = {
            market.cores[market.core_of(task_id)].cluster_id,
            market.cores[core_id].cluster_id,
        }
        current = self._evaluate(affected, moves={})
        candidate = self._evaluate(affected, moves={task_id: core_id})
        return current, candidate

    def _evaluate(
        self, affected_clusters: Set[str], moves: Dict[str, str]
    ) -> MappingEstimate:
        market = self._market
        # Hypothetical placement restricted to the affected clusters.
        placement: Dict[str, str] = {}
        for cluster_id in affected_clusters:
            for core_id in market.clusters[cluster_id].core_ids:
                for agent in market.tasks_on_core(core_id):
                    placement[agent.task_id] = core_id
        placement.update(moves)

        ratios: Dict[str, float] = {}
        bids: Dict[str, float] = {}
        levels: Dict[str, int] = {}
        for cluster_id in affected_clusters:
            cluster = market.clusters[cluster_id]
            core_tasks: Dict[str, List[str]] = {cid: [] for cid in cluster.core_ids}
            for task_id, core_id in placement.items():
                if core_id in core_tasks:
                    core_tasks[core_id].append(task_id)

            core_demands = {
                core_id: sum(self._demand(t, cluster_id) for t in tids)
                for core_id, tids in core_tasks.items()
            }
            cluster_demand = max(core_demands.values(), default=0.0)
            if cluster_demand <= 0.0:
                levels[cluster_id] = 0
                continue
            # Round demand up to the next supply value (section 3.2.4).
            target_level = cluster.max_index
            for index, supply in enumerate(cluster.supply_ladder):
                if supply >= cluster_demand - _EPS:
                    target_level = index
                    break
            levels[cluster_id] = target_level
            price = self.estimate_price(cluster_id, target_level)

            for core_id, tids in core_tasks.items():
                if not tids:
                    continue
                core_supply = cluster.supply_ladder[target_level]
                core_saturated = core_demands[core_id] > core_supply + _EPS
                priority_sum = sum(market.tasks[t].priority for t in tids)
                for task_id in tids:
                    demand = self._demand(task_id, cluster_id)
                    if not core_saturated:
                        supply = demand
                    else:
                        # Priority-proportional split of the saturated core.
                        supply = core_supply * market.tasks[task_id].priority / priority_sum
                        if demand > 0.0:
                            supply = min(supply, demand)
                    ratios[task_id] = (
                        min(1.0, supply / demand) if demand > 0.0 else 1.0
                    )
                    bids[task_id] = max(supply * price, market.config.bmin)
        return MappingEstimate(ratios=ratios, bids=bids, levels=levels)
