"""The virtual marketplace: one supply-demand round at a time.

The market is deliberately independent of the simulator: it trades in
abstract task/core/cluster identifiers and consumes a plain
:class:`MarketObservations` snapshot each round.  This is what lets the
paper's running examples (Tables 1-3) be reproduced verbatim in tests, and
what the PPM governor adapts onto the simulation engine.

Round protocol (sections 3.2.1-3.2.3, validated against Tables 1-3):

1. Sync hardware state; clusters whose V-F transition just completed enter
   the *observing* state.
2. Chip agent: if every cluster is actively trading, update the global
   allowance from last round's chip-wide demand/supply and the current
   power reading (demand acts with one round of lag -- the chip agent
   reacts to what the market expressed in the previous round).
3. Distribute allowances hierarchically.
4. Task agents bid (Equation 1), except in frozen clusters where bids and
   savings stay untouched until the new supply has been observed.
5. Core agents discover prices and sell supply pro rata to the bids.
   An observing cluster adopts the new price as its base price.
6. Cluster agents check the constrained core for intolerable inflation or
   deflation and request a one-level DVFS step; the request freezes the
   cluster's bids until the new supply is observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .agents import (
    ChipAgent,
    ChipPowerState,
    ClusterAgent,
    ClusterFreeze,
    CoreAgent,
    TaskAgent,
    distribute_allowance,
)
from .config import MarketConfig
from . import vecmarket

#: Below this population the per-agent loops beat the gather/scatter cost
#: of the array kernels, so small markets (including the pinned golden
#: scenarios) keep the scalar path.  The threshold depends only on market
#: state, so both simulation engines take the same path for the same run.
_VEC_MIN_TASKS = 32


@dataclass
class MarketObservations:
    """Snapshot of the world the market trades against this round.

    Attributes:
        demands: Current demand ``d_t`` per task (PUs), already converted
            from heart rates by the caller (Table 4).
        cluster_level: Applied V-F level index per cluster.
        cluster_in_transition: Whether the cluster's regulator is still
            mid-transition (bids stay frozen).
        chip_power_w: Total chip power ``W``.
        cluster_power_w: Per-cluster power ``W_v``.
    """

    demands: Dict[str, float]
    cluster_level: Dict[str, int]
    cluster_in_transition: Dict[str, bool] = field(default_factory=dict)
    chip_power_w: float = 0.0
    cluster_power_w: Dict[str, float] = field(default_factory=dict)


@dataclass
class RoundResult:
    """Outcome of one market round."""

    allocations: Dict[str, float]  #: supply ``s_t`` purchased per task
    level_requests: Dict[str, int]  #: cluster -> requested V-F level index
    chip_state: ChipPowerState
    allowance: float
    prices: Dict[str, float]  #: price per core
    frozen_clusters: Set[str]
    total_demand: float  #: chip demand ``D`` (sum of constrained-core demands)
    total_supply: float  #: chip supply ``S`` (sum of cluster supplies)


class Market:
    """Registry of agents plus the round engine."""

    def __init__(self, config: Optional[MarketConfig] = None):
        self.config = config or MarketConfig()
        self.tasks: Dict[str, TaskAgent] = {}
        self.cores: Dict[str, CoreAgent] = {}
        self.clusters: Dict[str, ClusterAgent] = {}
        self.chip = ChipAgent(
            allowance=0.0, wth=self.config.wth, wtdp=self.config.wtdp
        )
        self._placement: Dict[str, str] = {}  # task_id -> core_id
        # Incremental per-core index over ``_placement``: task ids per
        # core, kept in task-registration order (the order a full scan of
        # ``_placement.items()`` would yield) so float reductions over a
        # core's agents are bit-identical to the scan they replace.
        self._tasks_by_core: Dict[str, List[str]] = {}
        self._task_seq: Dict[str, int] = {}
        self._seq_counter: int = 0
        self._prev_total_demand: Optional[float] = None
        self._prev_total_supply: Optional[float] = None
        self._prev_shortfall: Optional[float] = None
        self.rounds_run = 0
        #: Bumped on every membership/placement mutation (add, remove,
        #: move, restore).  Anything derived purely from ``_tasks_by_core``
        #: and per-task priorities (the LBT evaluator's structural arrays)
        #: may be cached against this stamp.
        self.structure_stamp = 0
        # Clearing's structural gather -- (stamp, agents, core_ix,
        # cluster_ix, priority, slot_cores) in cluster -> core ->
        # registration order -- reused while the stamp holds.
        self._clearing_struct: Optional[tuple] = None
        self._round_struct: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Topology and placement registry
    # ------------------------------------------------------------------
    def add_cluster(
        self, cluster_id: str, core_ids: List[str], supply_ladder: List[float]
    ) -> ClusterAgent:
        if cluster_id in self.clusters:
            raise ValueError(f"duplicate cluster {cluster_id}")
        agent = ClusterAgent(
            cluster_id=cluster_id,
            core_ids=list(core_ids),
            supply_ladder=list(supply_ladder),
        )
        self.clusters[cluster_id] = agent
        for core_id in core_ids:
            if core_id in self.cores:
                raise ValueError(f"duplicate core {core_id}")
            self.cores[core_id] = CoreAgent(core_id=core_id, cluster_id=cluster_id)
            self._tasks_by_core[core_id] = []
        return agent

    def add_task(self, task_id: str, priority: int, core_id: str) -> TaskAgent:
        if task_id in self.tasks:
            raise ValueError(f"duplicate task {task_id}")
        if core_id not in self.cores:
            raise KeyError(f"unknown core {core_id}")
        agent = TaskAgent(
            task_id=task_id, priority=priority, bid=self.config.initial_bid
        )
        self.tasks[task_id] = agent
        self._placement[task_id] = core_id
        self._task_seq[task_id] = self._seq_counter
        self._seq_counter += 1
        self._tasks_by_core[core_id].append(task_id)  # newest seq: append
        self.structure_stamp += 1
        self._ensure_allowance_pool()
        return agent

    def remove_task(self, task_id: str) -> None:
        """Remove a task, keeping the books balanced when it vanishes mid-round.

        A task can disappear between bid and settle (it exited, or its
        cluster was hot-unplugged and the engine retired it).  Its wallet
        simply leaves circulation -- allowances are re-distributed from
        the global pool every round, so no money leaks -- but two
        invariants need guarding on the way out: the global allowance
        must stay at/above the ``bmin`` floor for the *remaining* tasks
        (I6), and the pool must stay finite even if the vanished agent
        carried a corrupted balance.
        """
        self.tasks.pop(task_id, None)
        core_id = self._placement.pop(task_id, None)
        if core_id is not None:
            self._tasks_by_core[core_id].remove(task_id)
        self._task_seq.pop(task_id, None)
        self.structure_stamp += 1
        if not self.tasks:
            return
        floor = self.config.bmin * len(self.tasks)
        if not math.isfinite(self.chip.allowance):
            self.chip.allowance = max(
                floor, 10.0 * self.config.initial_bid * len(self.tasks)
            )
        elif self.chip.allowance < floor:
            self.chip.allowance = floor

    def move_task(self, task_id: str, core_id: str) -> None:
        """Update the market's view of a migration; agent state persists."""
        if task_id not in self.tasks:
            raise KeyError(f"unknown task {task_id}")
        if core_id not in self.cores:
            raise KeyError(f"unknown core {core_id}")
        previous = self._placement[task_id]
        if previous == core_id:
            return
        self._placement[task_id] = core_id
        self._tasks_by_core[previous].remove(task_id)
        self._insert_in_seq_order(core_id, task_id)
        self.structure_stamp += 1

    def _insert_in_seq_order(self, core_id: str, task_id: str) -> None:
        """Insert into a core's list keeping registration order.

        A ``dict`` keeps a moved task at its original position, so the
        index must too; core populations are small, so a linear scan from
        the tail beats maintaining a parallel key list.
        """
        bucket = self._tasks_by_core[core_id]
        seq = self._task_seq[task_id]
        index = len(bucket)
        while index > 0 and self._task_seq[bucket[index - 1]] > seq:
            index -= 1
        bucket.insert(index, task_id)

    def _rebuild_core_index(self) -> Dict[str, List[str]]:
        """The per-core index a full ``_placement`` scan would produce."""
        rebuilt: Dict[str, List[str]] = {core_id: [] for core_id in self.cores}
        for task_id, core_id in self._placement.items():
            rebuilt[core_id].append(task_id)
        return rebuilt

    def core_index_consistent(self) -> bool:
        """Whether the incremental per-core index matches a fresh rebuild."""
        return self._rebuild_core_index() == self._tasks_by_core

    def core_of(self, task_id: str) -> str:
        return self._placement[task_id]

    def tasks_on_core(self, core_id: str) -> List[TaskAgent]:
        tasks = self.tasks
        return [tasks[tid] for tid in self._tasks_by_core[core_id]]

    def tasks_on_cluster(self, cluster_id: str) -> List[TaskAgent]:
        agents: List[TaskAgent] = []
        tasks = self.tasks
        for core_id in self.clusters[cluster_id].core_ids:
            for tid in self._tasks_by_core[core_id]:
                agents.append(tasks[tid])
        return agents

    def core_demand(self, core_id: str) -> float:
        """``D_c``: summed demand of the tasks mapped to a core."""
        return sum(agent.demand for agent in self.tasks_on_core(core_id))

    def constrained_core(self, cluster_id: str) -> Optional[CoreAgent]:
        """The cluster's highest-demand core (``None`` if task-free)."""
        cluster = self.clusters[cluster_id]
        populated = [
            cid for cid in cluster.core_ids if self.tasks_on_core(cid)
        ]
        if not populated:
            return None
        return self.cores[max(populated, key=self.core_demand)]

    def cluster_demand(self, cluster_id: str) -> float:
        """``D_v``: the demand of the cluster's constrained core."""
        constrained = self.constrained_core(cluster_id)
        return self.core_demand(constrained.core_id) if constrained else 0.0

    def _floor_price_descent(
        self,
        cluster: ClusterAgent,
        constrained: CoreAgent,
        agents: Optional[List[TaskAgent]] = None,
        demand: Optional[float] = None,
    ) -> int:
        """Deflation detection once bids have hit the ``bmin`` floor.

        The paper argues that when the constrained core's demand is below
        lower supply levels, "the price ... will fall till the bid price
        hits the minimal bid value bmin ... and the system stabilizes at
        the minimum frequency" (section 3.2.4).  Once every bid sits at
        the floor the price can no longer fall relative to the base, so
        the deflation signal disappears; this rule carries the descent
        through: step down while the next-lower level still covers the
        constrained core's demand.
        """
        if cluster.level_index == 0:
            return 0
        if agents is None:
            agents = self.tasks_on_core(constrained.core_id)
        if not agents:
            return 0
        if any(agent.bid > self.config.bmin * 1.01 for agent in agents):
            return 0
        if demand is None:
            demand = self.core_demand(constrained.core_id)
        if demand <= cluster.supply_ladder[cluster.level_index - 1]:
            return -1
        return 0

    def _allowance_growth_useful(
        self, cluster_demands: Optional[Dict[str, float]] = None
    ) -> bool:
        """True while extra money could actually buy more supply.

        Some cluster must have its constrained core demanding more than
        the current supply *and* sit below its maximum V-F level;
        otherwise higher bids cannot trigger any supply increase and
        growing the allowance only inflates prices.  (Per-task shortages
        on a core whose demand fits are an allocation matter the existing
        bids resolve without new money.)
        """
        for cluster in self.clusters.values():
            if cluster.level_index >= cluster.max_index:
                continue
            demand = (
                cluster_demands[cluster.cluster_id]
                if cluster_demands is not None
                else self.cluster_demand(cluster.cluster_id)
            )
            if demand > cluster.supply * 1.02:
                return True
        return False

    #: Redenomination threshold: quantity-theory neutrality means scaling
    #: all money *and* all prices by a common factor leaves every real
    #: allocation unchanged, so we use it purely to keep floats healthy.
    _RENORM_ABOVE = 1e6

    def _renormalize_money(self) -> None:
        base_scale = max(
            1.5 * self.config.initial_bid * max(len(self.tasks), 1), 1.0
        )
        if self.chip.allowance <= self._RENORM_ABOVE * base_scale:
            return
        factor = self.chip.allowance / base_scale
        self.chip.allowance /= factor
        for agent in self.tasks.values():
            agent.bid = max(self.config.bmin, agent.bid / factor)
            agent.wallet.allowance /= factor
            agent.wallet.savings /= factor
        for core in self.cores.values():
            core.price /= factor
            if core.base_price is not None:
                core.base_price /= factor

    def _ensure_allowance_pool(self) -> None:
        """Bootstrap the global allowance when tasks first appear."""
        if self.chip.allowance <= 0.0 and self.tasks:
            if self.config.initial_allowance is not None:
                self.chip.allowance = self.config.initial_allowance
            else:
                self.chip.allowance = 10.0 * self.config.initial_bid * len(self.tasks)

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """All mutable market state, JSON-serialisable (see repro.checkpoint)."""
        return {
            "tasks": [
                {
                    "task_id": agent.task_id,
                    "priority": agent.priority,
                    "allowance": agent.wallet.allowance,
                    "savings": agent.wallet.savings,
                    "bid": agent.bid,
                    "demand": agent.demand,
                    "supply": agent.supply,
                    "unsatisfied_rounds": agent.unsatisfied_rounds,
                }
                for agent in self.tasks.values()
            ],
            "cores": {
                core_id: {"price": core.price, "base_price": core.base_price}
                for core_id, core in self.cores.items()
            },
            "clusters": {
                cluster_id: {
                    "level_index": cluster.level_index,
                    "freeze": cluster.freeze.value,
                }
                for cluster_id, cluster in self.clusters.items()
            },
            "chip": {
                "allowance": self.chip.allowance,
                "state": self.chip.state.value,
                "last_delta": self.chip.last_delta,
            },
            "placement": [
                [task_id, core_id] for task_id, core_id in self._placement.items()
            ],
            "prev_total_demand": self._prev_total_demand,
            "prev_total_supply": self._prev_total_supply,
            "prev_shortfall": self._prev_shortfall,
            "rounds_run": self.rounds_run,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Apply a :meth:`snapshot_state` onto this market.

        Clusters and cores must already be registered (``add_cluster`` ran,
        i.e. the governor's ``prepare``); task agents are rebuilt wholesale
        in snapshot order.
        """
        from .money import Wallet

        missing = set(state["clusters"]) - set(self.clusters)
        if missing:
            raise KeyError(
                f"market snapshot references unregistered clusters {sorted(missing)}"
            )
        self.tasks = {}
        self._placement = {}
        self._tasks_by_core = {core_id: [] for core_id in self.cores}
        self._task_seq = {}
        self._seq_counter = 0
        for tstate in state["tasks"]:
            agent = TaskAgent(
                task_id=tstate["task_id"],
                priority=tstate["priority"],
                wallet=Wallet(
                    allowance=tstate["allowance"], savings=tstate["savings"]
                ),
                bid=tstate["bid"],
                demand=tstate["demand"],
                supply=tstate["supply"],
                unsatisfied_rounds=tstate["unsatisfied_rounds"],
            )
            self.tasks[agent.task_id] = agent
        for core_id, cstate in state["cores"].items():
            core = self.cores[core_id]
            core.price = cstate["price"]
            core.base_price = cstate["base_price"]
        for cluster_id, cstate in state["clusters"].items():
            cluster = self.clusters[cluster_id]
            cluster.level_index = cstate["level_index"]
            cluster.freeze = ClusterFreeze(cstate["freeze"])
        self.chip.allowance = state["chip"]["allowance"]
        self.chip.state = ChipPowerState(state["chip"]["state"])
        self.chip.last_delta = state["chip"]["last_delta"]
        for task_id, core_id in state["placement"]:
            self._placement[task_id] = core_id
            self._task_seq[task_id] = self._seq_counter
            self._seq_counter += 1
            self._tasks_by_core[core_id].append(task_id)
        self._prev_total_demand = state["prev_total_demand"]
        self._prev_total_supply = state["prev_total_supply"]
        self._prev_shortfall = state["prev_shortfall"]
        self.rounds_run = state["rounds_run"]
        self.structure_stamp += 1

    # ------------------------------------------------------------------
    # Vectorized clearing (steps 3-5 of the round protocol)
    # ------------------------------------------------------------------
    def _run_clearing_vectorized(
        self,
        obs: MarketObservations,
        core_agents: Dict[str, List[TaskAgent]],
        cluster_agents: Dict[str, List[TaskAgent]],
    ):
        """Allowance distribution, bidding, pricing and purchase as kernels.

        Bit-exact with the scalar steps it replaces: elementwise wallet
        arithmetic is IEEE-identical and every per-core reduction is an
        in-order ``bincount`` fold (see :mod:`repro.core.vecmarket`).
        Also folds in ``note_round_outcome``, which the caller then skips.
        """
        import numpy as np

        cfg = self.config

        # Gather agents in the order the scalar loops visit them:
        # cluster -> core -> per-core registration order.  The membership
        # part (agents, slot indices, priorities) is pure placement
        # structure, cached against the structure stamp; per-round slot
        # state (supply, freeze masks) is O(cores) and rebuilt each call.
        clusters = list(self.clusters.values())
        struct = self._clearing_struct
        if struct is None or struct[0] != self.structure_stamp:
            agents: List[TaskAgent] = []
            core_ix_list: List[int] = []
            cluster_ix_list: List[int] = []
            slot_cores: List[CoreAgent] = []
            for cluster_index, cluster in enumerate(clusters):
                for core_id in cluster.core_ids:
                    slot = len(slot_cores)
                    slot_cores.append(self.cores[core_id])
                    for agent in core_agents[core_id]:
                        agents.append(agent)
                        core_ix_list.append(slot)
                        cluster_ix_list.append(cluster_index)
            struct = (
                self.structure_stamp,
                agents,
                np.asarray(core_ix_list, dtype=np.intp),
                np.asarray(cluster_ix_list, dtype=np.intp),
                np.asarray([float(a.priority) for a in agents]),
                slot_cores,
            )
            self._clearing_struct = struct
        _stamp, agents, core_ix, cluster_ix, priority, slot_cores = struct
        slot_supply: List[float] = []
        slot_bidding: List[bool] = []  # cluster ACTIVE: bids may change
        slot_pricing: List[bool] = []  # cluster not AWAITING: price rediscovered
        for cluster in clusters:
            bidding = cluster.freeze is ClusterFreeze.ACTIVE
            pricing = cluster.freeze is not ClusterFreeze.AWAITING
            for _core_id in cluster.core_ids:
                slot_supply.append(cluster.supply)
                slot_bidding.append(bidding)
                slot_pricing.append(pricing)

        n_cores = len(slot_cores)
        bid = np.asarray([a.bid for a in agents])
        demand = np.asarray([a.demand for a in agents])
        supply = np.asarray([a.supply for a in agents])
        savings = np.asarray([a.wallet.savings for a in agents])
        unsatisfied = np.asarray(
            [a.unsatisfied_rounds for a in agents], dtype=np.int64
        )
        old_price = np.asarray([c.price for c in slot_cores])
        supplies = np.asarray(slot_supply)
        can_bid = np.asarray(slot_bidding)[core_ix]
        price_mask = np.asarray(slot_pricing)

        # 3. Hierarchical allowance distribution (same weight rule as
        #    ``distribute_allowance``; per-cluster weights stay scalar).
        populated = [
            ci for ci, cluster in enumerate(clusters)
            if cluster_agents[cluster.cluster_id]
        ]
        weights: Dict[int, float] = {}
        if obs.chip_power_w > 0.0 and len(populated) > 1:
            for ci in populated:
                weights[ci] = max(
                    0.0,
                    obs.chip_power_w
                    - obs.cluster_power_w.get(clusters[ci].cluster_id, 0.0),
                )
        if not weights or sum(weights.values()) <= 0.0:
            weights = {ci: 1.0 for ci in populated}
        total_weight = sum(weights.values())
        cluster_allowance = np.zeros(len(clusters))
        for ci in populated:
            cluster_allowance[ci] = (
                self.chip.allowance * weights[ci] / total_weight
            )
        allowance = vecmarket.share_allowance(priority, cluster_ix, cluster_allowance)

        # 4. Bidding (Equation 1) on actively-trading clusters only.
        new_bid, new_savings = vecmarket.settle_bids(
            bid,
            demand,
            supply,
            old_price[core_ix],
            allowance,
            savings,
            cfg.bmin,
            cfg.savings_cap_fraction,
        )
        bid = np.where(can_bid, new_bid, bid)
        savings = np.where(can_bid, new_savings, savings)

        # 5. Price discovery and pro-rata purchase; AWAITING clusters keep
        #    last round's prices and allocations.
        discovered = vecmarket.clear_prices(bid, core_ix, n_cores, supplies)
        price = np.where(price_mask, discovered, old_price)
        supply = np.where(
            price_mask[core_ix],
            vecmarket.grants_at_prices(bid, core_ix, price),
            supply,
        )

        # Persistence counters (``note_round_outcome``; nothing between
        # here and the scalar call site reads them).
        unsatisfied = vecmarket.update_unsatisfied_rounds(unsatisfied, demand, supply)

        # Scatter agent state back (one fused pass).
        has_agents = np.zeros(n_cores, dtype=bool)
        has_agents[core_ix] = True
        for agent, b, s, al, sp, u in zip(
            agents,
            bid.tolist(),
            savings.tolist(),
            allowance.tolist(),
            supply.tolist(),
            unsatisfied.tolist(),
        ):
            agent.bid = b
            wallet = agent.wallet
            wallet.savings = s
            wallet.allowance = al
            agent.supply = sp
            agent.unsatisfied_rounds = u

        # Scatter core prices, mirroring ``discover_price``'s base-price
        # adoption (only where a fresh price was actually discovered).
        price_list = price.tolist()
        for slot, core in enumerate(slot_cores):
            if not slot_pricing[slot]:
                continue
            p = price_list[slot]
            core.price = p
            if (
                has_agents[slot]
                and (core.base_price is None or core.base_price <= 0.0)
                and p > 0.0
            ):
                core.base_price = p

        allocations = {
            a.task_id: sp for a, sp in zip(agents, supply.tolist())
        }
        prices = {
            core.core_id: price_list[slot]
            for slot, core in enumerate(slot_cores)
        }
        for cluster in clusters:
            if cluster.freeze is ClusterFreeze.OBSERVING:
                for core_id in cluster.core_ids:
                    self.cores[core_id].reset_base_price()
                cluster.freeze = ClusterFreeze.ACTIVE
        return allocations, prices

    # ------------------------------------------------------------------
    # The round engine
    # ------------------------------------------------------------------
    def run_round(self, obs: MarketObservations) -> RoundResult:
        cfg = self.config

        # 1. Sync hardware state; promote AWAITING -> OBSERVING when the
        #    regulator reports the transition complete.
        observing: Set[str] = set()
        for cluster in self.clusters.values():
            level = obs.cluster_level.get(cluster.cluster_id)
            if level is not None:
                cluster.level_index = max(0, min(cluster.max_index, level))
            if cluster.freeze is ClusterFreeze.AWAITING and not obs.cluster_in_transition.get(
                cluster.cluster_id, False
            ):
                cluster.freeze = ClusterFreeze.OBSERVING
                observing.add(cluster.cluster_id)

        # Ingest demands (``d if d > 0.0 else 0.0`` is ``max(0.0, d)``).
        get_demand = obs.demands.get
        for task_id, agent in self.tasks.items():
            d = get_demand(task_id)
            if d is not None:
                agent.demand = d if d > 0.0 else 0.0

        # Demands and placement are now fixed for the rest of the round, so
        # gather the per-core agent lists, per-core demand sums (same fold
        # order as ``core_demand``) and constrained cores exactly once.
        # The agent lists and per-cluster populated-core lists are pure
        # placement structure, cached against the structure stamp.
        tasks = self.tasks
        rstruct = self._round_struct
        if rstruct is None or rstruct[0] != self.structure_stamp:
            core_agents_c: Dict[str, List[TaskAgent]] = {
                core_id: [tasks[tid] for tid in tids]
                for core_id, tids in self._tasks_by_core.items()
            }
            cluster_agents_c: Dict[str, List[TaskAgent]] = {}
            populated_cores_c: Dict[str, List[str]] = {}
            for cluster_id, cluster in self.clusters.items():
                gathered: List[TaskAgent] = []
                for core_id in cluster.core_ids:
                    gathered.extend(core_agents_c[core_id])
                cluster_agents_c[cluster_id] = gathered
                populated_cores_c[cluster_id] = [
                    cid for cid in cluster.core_ids if core_agents_c[cid]
                ]
            rstruct = (
                self.structure_stamp,
                core_agents_c,
                cluster_agents_c,
                populated_cores_c,
            )
            self._round_struct = rstruct
        _rstamp, core_agents, cluster_agents, populated_cores = rstruct
        core_demands: Dict[str, float] = {
            core_id: sum(agent.demand for agent in agents)
            for core_id, agents in core_agents.items()
        }
        constrained_cores: Dict[str, Optional[CoreAgent]] = {}
        cluster_demands: Dict[str, float] = {}
        for cluster_id, cluster in self.clusters.items():
            populated = populated_cores[cluster_id]
            if populated:
                constrained = self.cores[max(populated, key=core_demands.__getitem__)]
                constrained_cores[cluster_id] = constrained
                cluster_demands[cluster_id] = core_demands[constrained.core_id]
            else:
                constrained_cores[cluster_id] = None
                cluster_demands[cluster_id] = 0.0

        total_demand = 0.0
        total_supply = 0.0
        supply_shortfall = 0.0
        for cluster in self.clusters.values():
            if not cluster_agents[cluster.cluster_id]:
                continue
            cluster_demand = cluster_demands[cluster.cluster_id]
            total_demand += cluster_demand
            total_supply += cluster.supply
            supply_shortfall += max(0.0, cluster_demand - cluster.supply)

        # 2. Chip agent (suspended while any cluster is frozen, and reacting
        #    to the previous round's demand/supply).  More money is only
        #    useful while some cluster both leaves a task under-supplied
        #    and still has V-F headroom to sell more.
        all_active = all(
            c.freeze is ClusterFreeze.ACTIVE for c in self.clusters.values()
        )
        if all_active and self.tasks:
            floor = cfg.bmin * len(self.tasks)
            self.chip.update_allowance(
                chip_power_w=obs.chip_power_w,
                total_demand=(
                    self._prev_total_demand
                    if self._prev_total_demand is not None
                    else total_demand
                ),
                supply_shortfall=(
                    self._prev_shortfall
                    if self._prev_shortfall is not None
                    else supply_shortfall
                ),
                floor=floor,
                growth_useful=self._allowance_growth_useful(cluster_demands),
            )
            self._renormalize_money()
        else:
            self.chip.classify(obs.chip_power_w)

        use_vec = vecmarket.AVAILABLE and len(self.tasks) >= _VEC_MIN_TASKS
        if use_vec:
            # Steps 3-5 plus the persistence counters, as array kernels.
            allocations, prices = self._run_clearing_vectorized(
                obs, core_agents, cluster_agents
            )
        else:
            # 3. Hierarchical allowance distribution.
            distribute_allowance(
                global_allowance=self.chip.allowance,
                chip_power_w=obs.chip_power_w,
                cluster_power_w=obs.cluster_power_w,
                cluster_task_agents=cluster_agents,
            )

            # 4. Bidding (frozen clusters keep bids and savings untouched).
            for cluster in self.clusters.values():
                if cluster.bids_frozen:
                    continue
                for core_id in cluster.core_ids:
                    core = self.cores[core_id]
                    for agent in core_agents[core_id]:
                        agent.place_bid(
                            last_price=core.price,
                            bmin=cfg.bmin,
                            cap_fraction=cfg.savings_cap_fraction,
                        )

            # 5. Price discovery and purchase.  A cluster still AWAITING its
            #    transition keeps last round's prices and allocations.
            allocations = {}
            prices = {}
            for cluster in self.clusters.values():
                supply = cluster.supply
                for core_id in cluster.core_ids:
                    core = self.cores[core_id]
                    agents = core_agents[core_id]
                    if cluster.freeze is ClusterFreeze.AWAITING:
                        prices[core_id] = core.price
                        for agent in agents:
                            allocations[agent.task_id] = agent.supply
                        continue
                    if not agents:
                        core.price = 0.0
                        prices[core_id] = 0.0
                        continue
                    price = core.discover_price([a.bid for a in agents], supply)
                    prices[core_id] = price
                    for agent in agents:
                        agent.supply = agent.bid / price if price > 0.0 else 0.0
                        allocations[agent.task_id] = agent.supply
                if cluster.freeze is ClusterFreeze.OBSERVING:
                    for core_id in cluster.core_ids:
                        self.cores[core_id].reset_base_price()
                    cluster.freeze = ClusterFreeze.ACTIVE

        # 6. DVFS decisions (clusters that just observed skip one round so
        #    the market settles on the new base price first).
        level_requests: Dict[str, int] = {}
        for cluster in self.clusters.values():
            if cluster.freeze is not ClusterFreeze.ACTIVE:
                continue
            if cluster.cluster_id in observing:
                continue
            constrained = constrained_cores[cluster.cluster_id]
            if constrained is None:
                continue
            change = cluster.decide_level_change(constrained, cfg.tolerance)
            if change < 0 and self.chip.state is not ChipPowerState.EMERGENCY:
                # Round the demand up to the next supply value (section
                # 3.2.4): never deflate onto a level that no longer covers
                # the constrained core -- that guarantees an immediate
                # re-inflation and oscillation between adjacent levels.
                demand = core_demands[constrained.core_id]
                if cluster.supply_ladder[cluster.level_index - 1] < demand:
                    change = 0
            if change == 0:
                change = self._floor_price_descent(
                    cluster,
                    constrained,
                    core_agents[constrained.core_id],
                    core_demands[constrained.core_id],
                )
            if self.chip.state is ChipPowerState.EMERGENCY:
                # Above the TDP the only admissible direction is down: no
                # cluster may raise its supply, and a cluster whose buyers
                # are pinned at the minimum bid can no longer afford its
                # current supply -- deflation has bottomed out against the
                # bid floor, so carry the descent explicitly.
                if change > 0:
                    change = 0
                if change == 0 and cluster.level_index > 0:
                    agents = core_agents[constrained.core_id]
                    if agents and all(a.bid <= cfg.bmin * 1.01 for a in agents):
                        change = -1
            if change != 0:
                level_requests[cluster.cluster_id] = cluster.level_index + change
                cluster.freeze = ClusterFreeze.AWAITING

        if not use_vec:
            for agent in self.tasks.values():
                agent.note_round_outcome()

        self._prev_total_demand = total_demand
        self._prev_total_supply = total_supply
        self._prev_shortfall = supply_shortfall
        self.rounds_run += 1


        frozen = {
            c.cluster_id
            for c in self.clusters.values()
            if c.freeze is not ClusterFreeze.ACTIVE
        }
        return RoundResult(
            allocations=allocations,
            level_requests=level_requests,
            chip_state=self.chip.state,
            allowance=self.chip.allowance,
            prices=prices,
            frozen_clusters=frozen,
            total_demand=total_demand,
            total_supply=total_supply,
        )
