"""Governor-side resilience: surviving faulty sensing and actuation.

The market's stability arguments assume its inputs (power readings) and
outputs (DVFS requests, migrations) work.  On real hardware they fail;
this module adds the machinery a production power manager wraps around a
policy:

* :class:`StaleSensorDetector` -- validates power samples (dropout,
  stuck-at-last-value, spikes, NaN) and serves a last-good-value fallback
  so one broken hwmon read cannot poison a bid round.
* :class:`BackoffRetry` / :class:`DVFSSupervisor` -- read-back
  verification of issued DVFS requests with exponential-backoff re-issue,
  because a dropped cpufreq write is silent.
* :class:`MarketWatchdog` -- detects frozen bid rounds (the market raises
  or stops producing results) and diverging power, and degrades the
  governor to a safe static policy until health returns.

The PPM governor wires these in behind ``PPMConfig.resilience``; the
fault model that exercises them lives in :mod:`repro.faults`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..hw.sensors import SensorSample


@dataclass
class ResilienceConfig:
    """Tuning of the resilience layer (defaults are deliberately benign:
    in a fault-free run none of the mechanisms changes behaviour).

    Attributes:
        stale_reads: Bit-identical chip-power readings tolerated before
            the sensor is declared stuck and the fallback serves values.
        spike_factor: A reading above this multiple of the recent median
            (or below zero) is rejected as a glitch.
        retry_initial_rounds: First re-issue backoff for unacknowledged
            DVFS requests, in bid rounds; doubles per failure.
        retry_max_rounds: Backoff ceiling.
        watchdog_failures: Consecutive failed/raising bid rounds before
            the watchdog trips into safe mode.
        divergence_factor: Chip power above ``factor * wtdp`` counts as a
            diverging round (only with a power budget configured).
        divergence_rounds: Consecutive diverging rounds before tripping.
        recovery_rounds: Consecutive healthy safe-mode rounds required
            before the market is resumed.
        safe_level_index: V-F level the safe static policy pins clusters
            to (0 = lowest, the powersave floor).
    """

    stale_reads: int = 8
    spike_factor: float = 3.0
    retry_initial_rounds: int = 1
    retry_max_rounds: int = 32
    watchdog_failures: int = 4
    divergence_factor: float = 1.75
    divergence_rounds: int = 64
    recovery_rounds: int = 16
    safe_level_index: int = 0

    def __post_init__(self) -> None:
        if self.stale_reads < 2:
            raise ValueError("stale_reads must be at least 2")
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        if self.retry_initial_rounds < 1 or self.retry_max_rounds < self.retry_initial_rounds:
            raise ValueError("need 1 <= retry_initial_rounds <= retry_max_rounds")
        if min(self.watchdog_failures, self.divergence_rounds, self.recovery_rounds) < 1:
            raise ValueError("watchdog windows must be positive")
        if self.safe_level_index < 0:
            raise ValueError("safe_level_index must be non-negative")


class StaleSensorDetector:
    """Validates power samples and serves a last-good-value fallback.

    ``observe(sample)`` returns a trusted sample: the input when it looks
    healthy, otherwise the last good one (before any good sample: a
    zero-power stand-in, the conservative choice -- a governor that
    under-estimates power can only over-deliver QoS, never melt the
    chip's accounting).  Detection is three-pronged: *dropout* (``None``
    input -- the engine already substituted, or the caller read nothing),
    *stuck* (bit-identical chip power for ``stale_reads`` consecutive
    observations), and *spikes* (non-finite, negative, or above
    ``spike_factor`` times the rolling median).
    """

    _HISTORY = 32

    def __init__(self, stale_reads: int = 8, spike_factor: float = 3.0):
        self._stale_reads = stale_reads
        self._spike_factor = spike_factor
        self._history: List[float] = []
        self._last_good: Optional[SensorSample] = None
        self._last_raw: Optional[float] = None
        self._repeats = 0
        self.dropouts = 0
        self.stuck = 0
        self.spikes = 0

    # -- classification ----------------------------------------------------------
    def _is_spike(self, watts: float) -> bool:
        if not math.isfinite(watts) or watts < 0.0:
            return True
        if len(self._history) < 4:
            return False
        ordered = sorted(self._history)
        median = ordered[len(ordered) // 2]
        return watts > self._spike_factor * max(median, 0.25)

    def _is_stuck(self, watts: float) -> bool:
        if self._last_raw is not None and watts == self._last_raw:
            self._repeats += 1
        else:
            self._repeats = 0
        self._last_raw = watts
        return self._repeats >= self._stale_reads

    # -- entry point -------------------------------------------------------------
    def observe(self, sample: Optional[SensorSample]) -> SensorSample:
        """Classify ``sample`` and return a trusted one."""
        if sample is None:
            self.dropouts += 1
            return self.fallback()
        watts = sample.chip_power_w
        stuck = self._is_stuck(watts)
        if self._is_spike(watts):
            self.spikes += 1
            return self.fallback()
        if stuck:
            # A stuck register repeats the last *good* value too, so the
            # fallback is behaviour-preserving when the repetition is a
            # genuinely constant power draw.
            self.stuck += 1
            return self.fallback()
        self._history.append(watts)
        if len(self._history) > self._HISTORY:
            self._history.pop(0)
        self._last_good = sample
        return sample

    def fallback(self) -> SensorSample:
        if self._last_good is not None:
            return self._last_good
        return SensorSample(
            chip_power_w=0.0,
            cluster_power_w={},
            cluster_frequency_mhz={},
            cluster_voltage_v={},
        )

    @property
    def suspect_reads(self) -> int:
        return self.dropouts + self.stuck + self.spikes

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "history": list(self._history),
            "last_good": None if self._last_good is None else asdict(self._last_good),
            "last_raw": self._last_raw,
            "repeats": self._repeats,
            "dropouts": self.dropouts,
            "stuck": self.stuck,
            "spikes": self.spikes,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._history = list(state["history"])
        good = state["last_good"]
        self._last_good = None if good is None else SensorSample(
            chip_power_w=good["chip_power_w"],
            cluster_power_w=dict(good["cluster_power_w"]),
            cluster_frequency_mhz=dict(good["cluster_frequency_mhz"]),
            cluster_voltage_v=dict(good["cluster_voltage_v"]),
        )
        self._last_raw = state["last_raw"]
        self._repeats = state["repeats"]
        self.dropouts = state["dropouts"]
        self.stuck = state["stuck"]
        self.spikes = state["spikes"]


class BackoffRetry:
    """Per-key exponential backoff in units of rounds."""

    def __init__(self, initial_rounds: int = 1, max_rounds: int = 32):
        self._initial = initial_rounds
        self._max = max_rounds
        #: key -> (next round at which a retry is allowed, current backoff)
        self._state: Dict[object, tuple] = {}
        self.retries = 0

    def should_attempt(self, key: object, round_no: int) -> bool:
        state = self._state.get(key)
        return state is None or round_no >= state[0]

    def record_failure(self, key: object, round_no: int) -> None:
        _, backoff = self._state.get(key, (0, self._initial))
        self._state[key] = (round_no + backoff, min(2 * backoff, self._max))
        self.retries += 1

    def record_success(self, key: object) -> None:
        self._state.pop(key, None)

    def pending(self) -> int:
        return len(self._state)

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": [
                [key, next_round, backoff]
                for key, (next_round, backoff) in self._state.items()
            ],
            "retries": self.retries,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._state = {
            key: (next_round, backoff)
            for key, next_round, backoff in state["state"]
        }
        self.retries = state["retries"]


class DVFSSupervisor:
    """Verifies DVFS requests took effect; re-issues with backoff.

    The governor routes level requests through :meth:`request`; once per
    bid round :meth:`verify` reads the regulator's target back (the
    cpufreq sysfs read-back) and re-issues any request that was silently
    dropped, backing off exponentially while the actuation path stays
    broken.
    """

    def __init__(self, retry: Optional[BackoffRetry] = None):
        self._retry = retry or BackoffRetry()
        self._desired: Dict[str, int] = {}
        self.reissues = 0

    def request(self, sim, cluster, level_index: int) -> bool:
        clamped = cluster.vf_table.clamp_index(level_index)
        self._desired[cluster.cluster_id] = clamped
        return sim.request_level(cluster, clamped)

    def forget(self, cluster_id: str) -> None:
        self._desired.pop(cluster_id, None)
        self._retry.record_success(cluster_id)

    def verify(self, sim, round_no: int) -> int:
        """Re-issue unacknowledged requests; returns how many were sent."""
        sent = 0
        for cluster_id, level in list(self._desired.items()):
            cluster = sim.chip.cluster(cluster_id)
            if cluster.regulator.target_index == level:
                self._retry.record_success(cluster_id)
                continue
            if cluster_id in sim.offline_clusters:
                continue  # nothing to actuate until the cluster returns
            if self._retry.should_attempt(cluster_id, round_no):
                sim.request_level(cluster, level)
                self._retry.record_failure(cluster_id, round_no)
                if cluster.regulator.target_index == level:
                    self._retry.record_success(cluster_id)
                self.reissues += 1
                sent += 1
        return sent

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "desired": dict(self._desired),
            "reissues": self.reissues,
            "retry": self._retry.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._desired = dict(state["desired"])
        self.reissues = state["reissues"]
        self._retry.restore_state(state["retry"])


class WatchdogState(Enum):
    HEALTHY = "healthy"
    SAFE_MODE = "safe-mode"


class MarketWatchdog:
    """Detects frozen or diverging bid rounds; drives graceful degradation.

    *Frozen*: the market raised or otherwise failed to complete
    ``watchdog_failures`` consecutive rounds.  *Diverging*: round results
    carry non-finite prices/allocations, or chip power stays above
    ``divergence_factor * wtdp`` for ``divergence_rounds`` rounds despite
    the market's own emergency machinery.  Either trips the watchdog into
    safe mode; ``recovery_rounds`` consecutive healthy safe-mode rounds
    arm the market again.
    """

    def __init__(self, config: Optional[ResilienceConfig] = None):
        self.config = config or ResilienceConfig()
        self.state = WatchdogState.HEALTHY
        self.trips = 0
        self.trip_reasons: List[str] = []
        self._failures = 0
        self._diverging = 0
        self._healthy = 0

    # -- healthy-state feeds -----------------------------------------------------
    def record_failure(self, reason: str = "round failed") -> bool:
        """Feed one failed bid round; returns True if this trips safe mode."""
        self._failures += 1
        if (
            self.state is WatchdogState.HEALTHY
            and self._failures >= self.config.watchdog_failures
        ):
            self._trip(f"{reason} x{self._failures}")
            return True
        return False

    def record_round(
        self,
        chip_power_w: float,
        wtdp: Optional[float],
        prices: Optional[Dict[str, float]] = None,
        allocations: Optional[Dict[str, float]] = None,
    ) -> bool:
        """Feed one completed round; returns True if it trips safe mode."""
        self._failures = 0
        if self.state is not WatchdogState.HEALTHY:
            return False
        for label, values in (("price", prices), ("allocation", allocations)):
            for key, value in (values or {}).items():
                if not math.isfinite(value):
                    self._trip(f"non-finite {label} for {key}: {value}")
                    return True
        if wtdp is not None and chip_power_w > self.config.divergence_factor * wtdp:
            self._diverging += 1
            if self._diverging >= self.config.divergence_rounds:
                self._trip(
                    f"power {chip_power_w:.2f} W diverging above "
                    f"{self.config.divergence_factor:.2f} x TDP for "
                    f"{self._diverging} rounds"
                )
                return True
        else:
            self._diverging = 0
        return False

    # -- safe-mode feeds ---------------------------------------------------------
    def record_safe_round(self, healthy: bool) -> bool:
        """Feed one safe-mode round; returns True when recovery completes."""
        if self.state is not WatchdogState.SAFE_MODE:
            return False
        if healthy:
            self._healthy += 1
            if self._healthy >= self.config.recovery_rounds:
                self.state = WatchdogState.HEALTHY
                self._reset_counters()
                return True
        else:
            self._healthy = 0
        return False

    # -- internals ---------------------------------------------------------------
    def _trip(self, reason: str) -> None:
        self.state = WatchdogState.SAFE_MODE
        self.trips += 1
        self.trip_reasons.append(reason)
        self._reset_counters()

    def _reset_counters(self) -> None:
        self._failures = 0
        self._diverging = 0
        self._healthy = 0

    @property
    def in_safe_mode(self) -> bool:
        return self.state is WatchdogState.SAFE_MODE

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "trip_reasons": list(self.trip_reasons),
            "failures": self._failures,
            "diverging": self._diverging,
            "healthy": self._healthy,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.state = WatchdogState(state["state"])
        self.trips = state["trips"]
        self.trip_reasons = list(state["trip_reasons"])
        self._failures = state["failures"]
        self._diverging = state["diverging"]
        self._healthy = state["healthy"]
