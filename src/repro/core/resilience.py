"""Governor-side resilience: surviving faulty sensing and actuation.

The market's stability arguments assume its inputs (power readings) and
outputs (DVFS requests, migrations) work.  On real hardware they fail;
this module adds the machinery a production power manager wraps around a
policy:

* :class:`StaleSensorDetector` -- validates power samples (dropout,
  stuck-at-last-value, spikes, NaN) and serves a last-good-value fallback
  so one broken hwmon read cannot poison a bid round.
* :class:`BackoffRetry` / :class:`DVFSSupervisor` -- read-back
  verification of issued DVFS requests with exponential-backoff re-issue,
  because a dropped cpufreq write is silent.
* :class:`MarketWatchdog` -- detects frozen bid rounds (the market raises
  or stops producing results) and diverging power, and degrades the
  governor to a safe static policy until health returns.

The PPM governor wires these in behind ``PPMConfig.resilience``; the
fault model that exercises them lives in :mod:`repro.faults`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..hw.sensors import SensorSample


@dataclass
class ResilienceConfig:
    """Tuning of the resilience layer (defaults are deliberately benign:
    in a fault-free run none of the mechanisms changes behaviour).

    Attributes:
        stale_reads: Bit-identical chip-power readings tolerated before
            the sensor is declared stuck and the fallback serves values.
        spike_factor: A reading above this multiple of the recent median
            (or below zero) is rejected as a glitch.
        retry_initial_rounds: First re-issue backoff for unacknowledged
            DVFS requests, in bid rounds; doubles per failure.
        retry_max_rounds: Backoff ceiling.
        watchdog_failures: Consecutive failed/raising bid rounds before
            the watchdog trips into safe mode.
        divergence_factor: Chip power above ``factor * wtdp`` counts as a
            diverging round (only with a power budget configured).
        divergence_rounds: Consecutive diverging rounds before tripping.
        recovery_rounds: Consecutive healthy safe-mode rounds required
            before the market is resumed.
        safe_level_index: V-F level the safe static policy pins clusters
            to (0 = lowest, the powersave floor).
    """

    stale_reads: int = 8
    spike_factor: float = 3.0
    retry_initial_rounds: int = 1
    retry_max_rounds: int = 32
    watchdog_failures: int = 4
    divergence_factor: float = 1.75
    divergence_rounds: int = 64
    recovery_rounds: int = 16
    safe_level_index: int = 0

    def __post_init__(self) -> None:
        if self.stale_reads < 2:
            raise ValueError("stale_reads must be at least 2")
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        if self.retry_initial_rounds < 1 or self.retry_max_rounds < self.retry_initial_rounds:
            raise ValueError("need 1 <= retry_initial_rounds <= retry_max_rounds")
        if min(self.watchdog_failures, self.divergence_rounds, self.recovery_rounds) < 1:
            raise ValueError("watchdog windows must be positive")
        if self.safe_level_index < 0:
            raise ValueError("safe_level_index must be non-negative")


class StaleSensorDetector:
    """Validates power samples and serves a last-good-value fallback.

    ``observe(sample)`` returns a trusted sample: the input when it looks
    healthy, otherwise the last good one (before any good sample: a
    zero-power stand-in, the conservative choice -- a governor that
    under-estimates power can only over-deliver QoS, never melt the
    chip's accounting).  Detection is three-pronged: *dropout* (``None``
    input -- the engine already substituted, or the caller read nothing),
    *stuck* (bit-identical chip power for ``stale_reads`` consecutive
    observations), and *spikes* (non-finite, negative, or above
    ``spike_factor`` times the rolling median).
    """

    _HISTORY = 32

    def __init__(self, stale_reads: int = 8, spike_factor: float = 3.0):
        self._stale_reads = stale_reads
        self._spike_factor = spike_factor
        self._history: List[float] = []
        self._last_good: Optional[SensorSample] = None
        self._last_raw: Optional[float] = None
        self._repeats = 0
        self.dropouts = 0
        self.stuck = 0
        self.spikes = 0

    # -- classification ----------------------------------------------------------
    def _is_spike(self, watts: float) -> bool:
        if not math.isfinite(watts) or watts < 0.0:
            return True
        if len(self._history) < 4:
            return False
        ordered = sorted(self._history)
        median = ordered[len(ordered) // 2]
        return watts > self._spike_factor * max(median, 0.25)

    def _is_stuck(self, watts: float) -> bool:
        if self._last_raw is not None and watts == self._last_raw:
            self._repeats += 1
        else:
            self._repeats = 0
        self._last_raw = watts
        return self._repeats >= self._stale_reads

    # -- entry point -------------------------------------------------------------
    def observe(self, sample: Optional[SensorSample]) -> SensorSample:
        """Classify ``sample`` and return a trusted one."""
        if sample is None:
            self.dropouts += 1
            return self.fallback()
        watts = sample.chip_power_w
        stuck = self._is_stuck(watts)
        if self._is_spike(watts):
            self.spikes += 1
            return self.fallback()
        if stuck:
            # A stuck register repeats the last *good* value too, so the
            # fallback is behaviour-preserving when the repetition is a
            # genuinely constant power draw.
            self.stuck += 1
            return self.fallback()
        self._history.append(watts)
        if len(self._history) > self._HISTORY:
            self._history.pop(0)
        self._last_good = sample
        return sample

    def fallback(self) -> SensorSample:
        if self._last_good is not None:
            return self._last_good
        return SensorSample(
            chip_power_w=0.0,
            cluster_power_w={},
            cluster_frequency_mhz={},
            cluster_voltage_v={},
        )

    @property
    def suspect_reads(self) -> int:
        return self.dropouts + self.stuck + self.spikes

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "history": list(self._history),
            "last_good": None if self._last_good is None else asdict(self._last_good),
            "last_raw": self._last_raw,
            "repeats": self._repeats,
            "dropouts": self.dropouts,
            "stuck": self.stuck,
            "spikes": self.spikes,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._history = list(state["history"])
        good = state["last_good"]
        self._last_good = None if good is None else SensorSample(
            chip_power_w=good["chip_power_w"],
            cluster_power_w=dict(good["cluster_power_w"]),
            cluster_frequency_mhz=dict(good["cluster_frequency_mhz"]),
            cluster_voltage_v=dict(good["cluster_voltage_v"]),
        )
        self._last_raw = state["last_raw"]
        self._repeats = state["repeats"]
        self.dropouts = state["dropouts"]
        self.stuck = state["stuck"]
        self.spikes = state["spikes"]


class BackoffRetry:
    """Per-key exponential backoff in units of rounds."""

    def __init__(self, initial_rounds: int = 1, max_rounds: int = 32):
        self._initial = initial_rounds
        self._max = max_rounds
        #: key -> (next round at which a retry is allowed, current backoff)
        self._state: Dict[object, tuple] = {}
        self.retries = 0

    def should_attempt(self, key: object, round_no: int) -> bool:
        state = self._state.get(key)
        return state is None or round_no >= state[0]

    def record_failure(self, key: object, round_no: int) -> None:
        _, backoff = self._state.get(key, (0, self._initial))
        self._state[key] = (round_no + backoff, min(2 * backoff, self._max))
        self.retries += 1

    def record_success(self, key: object) -> None:
        self._state.pop(key, None)

    def pending(self) -> int:
        return len(self._state)

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": [
                [key, next_round, backoff]
                for key, (next_round, backoff) in self._state.items()
            ],
            "retries": self.retries,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._state = {
            key: (next_round, backoff)
            for key, next_round, backoff in state["state"]
        }
        self.retries = state["retries"]


class DVFSSupervisor:
    """Verifies DVFS requests took effect; re-issues with backoff.

    The governor routes level requests through :meth:`request`; once per
    bid round :meth:`verify` reads the regulator's target back (the
    cpufreq sysfs read-back) and re-issues any request that was silently
    dropped, backing off exponentially while the actuation path stays
    broken.
    """

    def __init__(self, retry: Optional[BackoffRetry] = None):
        self._retry = retry or BackoffRetry()
        self._desired: Dict[str, int] = {}
        self.reissues = 0

    def request(self, sim, cluster, level_index: int) -> bool:
        clamped = cluster.vf_table.clamp_index(level_index)
        self._desired[cluster.cluster_id] = clamped
        return sim.request_level(cluster, clamped)

    def forget(self, cluster_id: str) -> None:
        self._desired.pop(cluster_id, None)
        self._retry.record_success(cluster_id)

    @staticmethod
    def _acknowledged_level(sim, cluster, level: int) -> int:
        """The level the engine can actually grant for a desired ``level``.

        A thermal V-F ceiling clamps requests below the governor's desire;
        read-back verification must compare against the clamped level or
        it would re-issue a doomed request every round for as long as the
        throttle holds.
        """
        ceiling_of = getattr(sim, "level_ceiling_of", None)
        ceiling = ceiling_of(cluster.cluster_id) if ceiling_of is not None else None
        if ceiling is not None and level > ceiling:
            return ceiling
        return level

    def verify(self, sim, round_no: int) -> int:
        """Re-issue unacknowledged requests; returns how many were sent."""
        sent = 0
        for cluster_id, level in list(self._desired.items()):
            cluster = sim.chip.cluster(cluster_id)
            acknowledged = self._acknowledged_level(sim, cluster, level)
            if cluster.regulator.target_index == acknowledged:
                self._retry.record_success(cluster_id)
                continue
            if cluster_id in sim.offline_clusters:
                continue  # nothing to actuate until the cluster returns
            if self._retry.should_attempt(cluster_id, round_no):
                sim.request_level(cluster, level)
                self._retry.record_failure(cluster_id, round_no)
                if cluster.regulator.target_index == acknowledged:
                    self._retry.record_success(cluster_id)
                self.reissues += 1
                sent += 1
        return sent

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "desired": dict(self._desired),
            "reissues": self.reissues,
            "retry": self._retry.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._desired = dict(state["desired"])
        self.reissues = state["reissues"]
        self._retry.restore_state(state["retry"])


class WatchdogState(Enum):
    HEALTHY = "healthy"
    SAFE_MODE = "safe-mode"


class MarketWatchdog:
    """Detects frozen or diverging bid rounds; drives graceful degradation.

    *Frozen*: the market raised or otherwise failed to complete
    ``watchdog_failures`` consecutive rounds.  *Diverging*: round results
    carry non-finite prices/allocations, or chip power stays above
    ``divergence_factor * wtdp`` for ``divergence_rounds`` rounds despite
    the market's own emergency machinery.  Either trips the watchdog into
    safe mode; ``recovery_rounds`` consecutive healthy safe-mode rounds
    arm the market again.
    """

    def __init__(self, config: Optional[ResilienceConfig] = None):
        self.config = config or ResilienceConfig()
        self.state = WatchdogState.HEALTHY
        self.trips = 0
        self.trip_reasons: List[str] = []
        self._failures = 0
        self._diverging = 0
        self._healthy = 0

    # -- healthy-state feeds -----------------------------------------------------
    def record_failure(self, reason: str = "round failed") -> bool:
        """Feed one failed bid round; returns True if this trips safe mode."""
        self._failures += 1
        if (
            self.state is WatchdogState.HEALTHY
            and self._failures >= self.config.watchdog_failures
        ):
            self._trip(f"{reason} x{self._failures}")
            return True
        return False

    def record_round(
        self,
        chip_power_w: float,
        wtdp: Optional[float],
        prices: Optional[Dict[str, float]] = None,
        allocations: Optional[Dict[str, float]] = None,
    ) -> bool:
        """Feed one completed round; returns True if it trips safe mode."""
        self._failures = 0
        if self.state is not WatchdogState.HEALTHY:
            return False
        for label, values in (("price", prices), ("allocation", allocations)):
            for key, value in (values or {}).items():
                if not math.isfinite(value):
                    self._trip(f"non-finite {label} for {key}: {value}")
                    return True
        if wtdp is not None and chip_power_w > self.config.divergence_factor * wtdp:
            self._diverging += 1
            if self._diverging >= self.config.divergence_rounds:
                self._trip(
                    f"power {chip_power_w:.2f} W diverging above "
                    f"{self.config.divergence_factor:.2f} x TDP for "
                    f"{self._diverging} rounds"
                )
                return True
        else:
            self._diverging = 0
        return False

    # -- safe-mode feeds ---------------------------------------------------------
    def record_safe_round(self, healthy: bool) -> bool:
        """Feed one safe-mode round; returns True when recovery completes."""
        if self.state is not WatchdogState.SAFE_MODE:
            return False
        if healthy:
            self._healthy += 1
            if self._healthy >= self.config.recovery_rounds:
                self.state = WatchdogState.HEALTHY
                self._reset_counters()
                return True
        else:
            self._healthy = 0
        return False

    # -- internals ---------------------------------------------------------------
    def _trip(self, reason: str) -> None:
        self.state = WatchdogState.SAFE_MODE
        self.trips += 1
        self.trip_reasons.append(reason)
        self._reset_counters()

    def _reset_counters(self) -> None:
        self._failures = 0
        self._diverging = 0
        self._healthy = 0

    @property
    def in_safe_mode(self) -> bool:
        return self.state is WatchdogState.SAFE_MODE

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "trip_reasons": list(self.trip_reasons),
            "failures": self._failures,
            "diverging": self._diverging,
            "healthy": self._healthy,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.state = WatchdogState(state["state"])
        self.trips = state["trips"]
        self.trip_reasons = list(state["trip_reasons"])
        self._failures = state["failures"]
        self._diverging = state["diverging"]
        self._healthy = state["healthy"]


class ThermalState(Enum):
    """Per-cluster rung on the thermal protection ladder."""

    NORMAL = "normal"
    WARN = "warn"
    THROTTLE = "throttle"
    SHED = "shed"
    TRIP = "trip"


#: Ladder order, coolest to hottest.  Transitions move one rung per
#: evaluation, so escalation is always warn -> throttle -> shed -> trip.
_LADDER = [
    ThermalState.NORMAL,
    ThermalState.WARN,
    ThermalState.THROTTLE,
    ThermalState.SHED,
    ThermalState.TRIP,
]


class ThermalSupervisor:
    """Graduated thermal degradation with hysteresis.

    Driven by the engine every tick with the *sensed* thermal sample (so a
    stuck thermal sensor blinds it, exactly like hardware); it evaluates
    each cluster at most once per ``check_period_s`` and moves that
    cluster one rung up the ladder when its temperature reaches the next
    rung's entry threshold, or one rung down when it has cooled below the
    current rung's entry threshold minus ``hysteresis_k``:

    * **warn** -- asks the governor (when it exposes
      ``set_thermal_surcharge``) to inflate observed power, so a price-
      theory market raises prices and bids shrink before any forcible
      action.
    * **throttle** -- ratchets the cluster's V-F ceiling
      (:meth:`~repro.sim.engine.Simulation.set_level_ceiling`) down one
      level per hot evaluation and back up one per cool evaluation.
    * **shed** -- migrates the cluster's tasks to the coolest other
      online cluster (big -> LITTLE under a typical hot big cluster).
    * **trip** -- hot-unplugs the cluster through the engine's existing
      safe-mode/hotplug machinery; it is replugged on recovery.

    The supervisor only ever replugs clusters *it* tripped, so an
    injected hotplug fault is never masked by thermal recovery.
    """

    def __init__(self, config, tcrit_c: float = 95.0):
        self.config = config
        self.tcrit_c = tcrit_c
        self._states: Dict[str, ThermalState] = {}
        self._next_check_s = 0.0
        self._tripped: set = set()
        self._entry_c = {
            ThermalState.WARN: config.warn_c,
            ThermalState.THROTTLE: config.throttle_c,
            ThermalState.SHED: config.shed_c,
            ThermalState.TRIP: config.trip_c,
        }
        self.warnings = 0
        self.throttles = 0
        self.sheds = 0
        self.tasks_shed = 0
        self.trips = 0
        self.recoveries = 0
        #: ``(time_s, cluster_id, from_state, to_state)`` per transition.
        self.transitions: List[tuple] = []

    # -- queries -----------------------------------------------------------------
    def state_of(self, cluster_id: str) -> ThermalState:
        return self._states.get(cluster_id, ThermalState.NORMAL)

    @property
    def unrecovered_trips(self) -> int:
        """Clusters currently offline because this supervisor tripped them."""
        return len(self._tripped)

    @property
    def max_state(self) -> ThermalState:
        if not self._states:
            return ThermalState.NORMAL
        return max(self._states.values(), key=_LADDER.index)

    def stats(self) -> Dict[str, int]:
        return {
            "warnings": self.warnings,
            "throttles": self.throttles,
            "sheds": self.sheds,
            "tasks_shed": self.tasks_shed,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "unrecovered_trips": self.unrecovered_trips,
            "transitions": len(self.transitions),
        }

    # -- engine hook -------------------------------------------------------------
    def on_tick(self, sim, sample) -> None:
        """Evaluate the ladder against one sensed thermal sample."""
        if sim.now < self._next_check_s:
            return
        self._next_check_s = sim.now + self.config.check_period_s
        # Estimated-power guard band: while the power signal is suspect
        # the heat forecast is too, so judge every cluster a few degrees
        # hotter than sensed and escalate earlier.  Zero whenever no
        # estimation pipeline is attached or it is healthy.
        guard = 0.0
        estimation = getattr(sim, "estimation", None)
        if estimation is not None and estimation.degraded:
            guard = getattr(self.config, "estimation_guard_k", 0.0)
        for cluster in sim.chip.clusters:
            temp = sample.cluster_temperature_c.get(cluster.cluster_id)
            if temp is None:
                continue
            self._evaluate(sim, cluster, temp + guard, sample)
        self._apply_surcharge(sim)

    # -- ladder mechanics --------------------------------------------------------
    def _evaluate(self, sim, cluster, temp: float, sample) -> None:
        cluster_id = cluster.cluster_id
        state = self.state_of(cluster_id)
        rank = _LADDER.index(state)
        new_rank = rank
        if rank < len(_LADDER) - 1 and temp >= self._entry_c[_LADDER[rank + 1]]:
            new_rank = rank + 1
        elif rank > 0 and temp < self._entry_c[state] - self.config.hysteresis_k:
            new_rank = rank - 1
        if new_rank != rank:
            self._transition(sim, cluster, state, _LADDER[new_rank], sample)
        self._states[cluster_id] = _LADDER[new_rank]
        self._adjust_ceiling(sim, cluster, temp)

    def _transition(self, sim, cluster, old: ThermalState, new: ThermalState, sample) -> None:
        self.transitions.append(
            (sim.now, cluster.cluster_id, old.value, new.value)
        )
        if _LADDER.index(new) > _LADDER.index(old):
            if new is ThermalState.WARN:
                self.warnings += 1
            elif new is ThermalState.THROTTLE:
                self.throttles += 1
            elif new is ThermalState.SHED:
                self.sheds += 1
                self._shed(sim, cluster, sample)
            elif new is ThermalState.TRIP:
                self.trips += 1
                sim.hotplug_out(cluster)
                self._tripped.add(cluster.cluster_id)
        elif old is ThermalState.TRIP and cluster.cluster_id in self._tripped:
            sim.hotplug_in(cluster)
            self._tripped.discard(cluster.cluster_id)
            self.recoveries += 1

    def _adjust_ceiling(self, sim, cluster, temp: float) -> None:
        """Ratchet the V-F ceiling while at or above the throttle rung.

        One level per evaluation in either direction: down while the
        cluster is still at or above ``throttle_c``, back up once it has
        dropped below the throttle rung, clearing the ceiling entirely
        when it returns to the table's top level.
        """
        state = self.state_of(cluster.cluster_id)
        ceiling = sim.level_ceiling_of(cluster.cluster_id)
        max_index = cluster.vf_table.max_index
        if _LADDER.index(state) >= _LADDER.index(ThermalState.THROTTLE):
            if temp >= self.config.throttle_c:
                current = max_index if ceiling is None else ceiling
                sim.set_level_ceiling(cluster, max(0, current - 1))
        elif ceiling is not None:
            if ceiling + 1 >= max_index:
                sim.clear_level_ceiling(cluster)
            else:
                sim.set_level_ceiling(cluster, ceiling + 1)

    def _shed(self, sim, cluster, sample) -> None:
        """Migrate the hot cluster's tasks to the coolest other cluster."""
        others = [
            c for c in sim.online_clusters() if c.cluster_id != cluster.cluster_id
        ]
        if not others:
            return  # nowhere to go; throttle/trip remain
        temps = sample.cluster_temperature_c
        destination = min(
            others, key=lambda c: (temps.get(c.cluster_id, float("inf")), c.cluster_id)
        )
        for task in sorted(
            sim.placement.tasks_on_cluster(cluster), key=lambda t: t.name
        ):
            core = sim.placement.least_loaded_core(destination.cores, sim.now)
            record = sim.migrate(task, core)
            if not record.failed:
                self.tasks_shed += 1

    def _apply_surcharge(self, sim) -> None:
        hook = getattr(sim.governor, "set_thermal_surcharge", None)
        if hook is None:
            return
        hot = _LADDER.index(self.max_state) >= _LADDER.index(ThermalState.WARN)
        hook(self.config.warn_surcharge if hot else 0.0)

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "states": {cid: state.value for cid, state in self._states.items()},
            "next_check_s": self._next_check_s,
            "tripped": sorted(self._tripped),
            "warnings": self.warnings,
            "throttles": self.throttles,
            "sheds": self.sheds,
            "tasks_shed": self.tasks_shed,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "transitions": [list(t) for t in self.transitions],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._states = {
            cid: ThermalState(value) for cid, value in state["states"].items()
        }
        self._next_check_s = state["next_check_s"]
        self._tripped = set(state["tripped"])
        self.warnings = state["warnings"]
        self.throttles = state["throttles"]
        self.sheds = state["sheds"]
        self.tasks_shed = state["tasks_shed"]
        self.trips = state["trips"]
        self.recoveries = state["recoveries"]
        self.transitions = [tuple(t) for t in state["transitions"]]


class EstimatorState(Enum):
    """Chip-global rung on the power-estimator degradation ladder."""

    HEALTHY = "healthy"
    FROZEN = "frozen"
    MARGIN = "margin"
    FALLBACK = "fallback"


#: Ladder order, healthy to degraded.  Like the thermal ladder,
#: transitions move one rung per evaluation.
_ESTIMATOR_LADDER = [
    EstimatorState.HEALTHY,
    EstimatorState.FROZEN,
    EstimatorState.MARGIN,
    EstimatorState.FALLBACK,
]

#: Health-score (worst-cluster innovation EWMA / gate) entry thresholds.
_ESTIMATOR_ENTRY = {
    EstimatorState.FROZEN: 1.0,
    EstimatorState.MARGIN: 2.0,
    EstimatorState.FALLBACK: 4.0,
}


class EstimatorSupervisor:
    """Sanity-gates power estimates and degrades the estimator gracefully.

    Two layers of protection, mirroring how a production power manager
    treats a counter-based model it cannot fully trust:

    **Per-tick sanity gates** (always on, any rung below fallback):
    non-finite estimates are replaced by the metered reading; estimates
    are clamped into ``[0, max_cluster_power_w]`` (the physical envelope
    of the cluster at its top V-F level); and an estimate farther than
    ``innovation_clamp_w`` from the metered reading is rejected for that
    tick.  Every intervention is counted.

    **Degradation ladder** (evaluated once per ``check_period_s``): the
    health score is the worst cluster's innovation EWMA divided by
    ``innovation_gate_w``.  Escalation moves one rung per evaluation when
    the score reaches the next rung's entry threshold:

    * **frozen** -- coefficient updates stop, holding the last model that
      tracked reality; the innovation EWMA keeps scoring the held model
      against fresh metered power so recovery is observable.
    * **margin** -- served estimates are inflated by ``margin_factor``,
      pushing every governor conservative while the model is suspect.
    * **fallback** -- the metered (analytic-model) sample is served
      outright and the estimator *retrains in the shadow* (its output is
      out of the loop, so re-learning is free), letting a post-fault
      model re-converge and climb back down the ladder.

    Descent requires the score below the *current* rung's entry threshold
    minus ``hysteresis`` for ``recovery_checks`` consecutive evaluations,
    then moves one rung down, so recovery never flaps and never skips a
    rung either.  Every transition is recorded as
    ``(time_s, from_state, to_state, score)``.
    """

    def __init__(self, config, max_cluster_power_w: Dict[str, float]):
        self.config = config
        self._max_power = dict(max_cluster_power_w)
        self.state = EstimatorState.HEALTHY
        self._next_check_s = 0.0
        self._healthy_checks = 0
        self.nonfinite_reads = 0
        self.clamped_reads = 0
        self.rejected_reads = 0
        self.freezes = 0
        self.margins = 0
        self.fallbacks = 0
        self.recoveries = 0
        #: ``(time_s, from_state, to_state, score)`` per transition.
        self.transitions: List[tuple] = []

    # -- queries -----------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Margin or worse: admission should price in the uncertainty."""
        return _ESTIMATOR_LADDER.index(self.state) >= _ESTIMATOR_LADDER.index(
            EstimatorState.MARGIN
        )

    def stats(self) -> Dict[str, object]:
        return {
            "estimator_state": self.state.value,
            "nonfinite_reads": self.nonfinite_reads,
            "clamped_reads": self.clamped_reads,
            "rejected_reads": self.rejected_reads,
            "freezes": self.freezes,
            "margins": self.margins,
            "fallbacks": self.fallbacks,
            "estimator_recoveries": self.recoveries,
            "estimator_transitions": len(self.transitions),
        }

    # -- pipeline hook -----------------------------------------------------------
    def on_tick(self, sim, estimator, metered: SensorSample) -> SensorSample:
        """Gate this tick's estimates; returns the sample to serve."""
        if sim.now >= self._next_check_s:
            self._next_check_s = sim.now + self.config.check_period_s
            self._evaluate(sim, estimator)
        if self.state is EstimatorState.FALLBACK:
            return metered
        margin = (
            self.config.margin_factor
            if self.state is EstimatorState.MARGIN
            else 1.0
        )
        cluster_power: Dict[str, float] = {}
        for cluster_id, estimate in estimator.estimates().items():
            metered_w = metered.cluster_power_w.get(cluster_id, 0.0)
            watts = estimate.power_w
            if not math.isfinite(watts):
                self.nonfinite_reads += 1
                watts = metered_w
            else:
                ceiling = self._max_power.get(cluster_id, float("inf"))
                if watts < 0.0 or watts > ceiling:
                    self.clamped_reads += 1
                    watts = min(max(watts, 0.0), ceiling)
                if abs(watts - metered_w) > self.config.innovation_clamp_w:
                    self.rejected_reads += 1
                    watts = metered_w
            cluster_power[cluster_id] = watts * margin
        return SensorSample(
            chip_power_w=sum(cluster_power.values()),
            cluster_power_w=cluster_power,
            cluster_frequency_mhz=dict(metered.cluster_frequency_mhz),
            cluster_voltage_v=dict(metered.cluster_voltage_v),
        )

    # -- ladder mechanics --------------------------------------------------------
    def _evaluate(self, sim, estimator) -> None:
        score = estimator.health_score()
        rank = _ESTIMATOR_LADDER.index(self.state)
        new_rank = rank
        if (
            rank < len(_ESTIMATOR_LADDER) - 1
            and score >= _ESTIMATOR_ENTRY[_ESTIMATOR_LADDER[rank + 1]]
        ):
            new_rank = rank + 1
            self._healthy_checks = 0
        elif (
            rank > 0
            and score < _ESTIMATOR_ENTRY[self.state] - self.config.hysteresis
        ):
            self._healthy_checks += 1
            if self._healthy_checks >= self.config.recovery_checks:
                new_rank = rank - 1
                self._healthy_checks = 0
        else:
            self._healthy_checks = 0
        if new_rank != rank:
            self._transition(sim, estimator, _ESTIMATOR_LADDER[new_rank], score)

    def _transition(self, sim, estimator, new: EstimatorState, score: float) -> None:
        old = self.state
        self.transitions.append((sim.now, old.value, new.value, score))
        self.state = new
        new_rank = _ESTIMATOR_LADDER.index(new)
        if new_rank > _ESTIMATOR_LADDER.index(old):
            if new is EstimatorState.FROZEN:
                self.freezes += 1
            elif new is EstimatorState.MARGIN:
                self.margins += 1
            elif new is EstimatorState.FALLBACK:
                self.fallbacks += 1
        else:
            self.recoveries += 1
        # Hold the model while its output is still being served (frozen /
        # margin); let it learn when it is out of the loop (healthy) or
        # shadow-retraining behind the metered fallback.
        if new in (EstimatorState.FROZEN, EstimatorState.MARGIN):
            estimator.freeze()
        else:
            estimator.unfreeze()

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "next_check_s": self._next_check_s,
            "healthy_checks": self._healthy_checks,
            "nonfinite_reads": self.nonfinite_reads,
            "clamped_reads": self.clamped_reads,
            "rejected_reads": self.rejected_reads,
            "freezes": self.freezes,
            "margins": self.margins,
            "fallbacks": self.fallbacks,
            "recoveries": self.recoveries,
            "transitions": [list(t) for t in self.transitions],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.state = EstimatorState(state["state"])
        self._next_check_s = state["next_check_s"]
        self._healthy_checks = state["healthy_checks"]
        self.nonfinite_reads = state["nonfinite_reads"]
        self.clamped_reads = state["clamped_reads"]
        self.rejected_reads = state["rejected_reads"]
        self.freezes = state["freezes"]
        self.margins = state["margins"]
        self.fallbacks = state["fallbacks"]
        self.recoveries = state["recoveries"]
        self.transitions = [tuple(t) for t in state["transitions"]]
