"""The fault injector: interposes a schedule on the engine's narrow seams.

Attaching a :class:`FaultInjector` to a simulation wraps exactly the
interfaces governors already go through -- the power sensor, the DVFS and
migration control surface, the per-task heartbeat monitors -- so every
governor runs under faults *without code changes*, mirroring how the real
failures live below the policy layer (hwmon, cpufreq, sched_setaffinity,
CPU hotplug).

The injector is deliberately mechanical: all stochastic choice lives in
the schedule (see :mod:`repro.faults.events`), so a given schedule replays
identically against any governor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hw.sensors import (
    PowerSensor,
    SensorReadError,
    SensorSample,
    ThermalSample,
    ThermalSensor,
)
from ..hw.counters import COUNTER_NAMES, CounterSample
from ..hw.topology import Cluster
from .events import COUNTER_FAULTS, THERMAL_FAULTS, FaultKind, FaultSchedule


class FaultySensor:
    """A :class:`PowerSensor` front end that applies scheduled sensor faults.

    Drop-in for the engine's sensor attribute: ``sample()`` raises
    :class:`SensorReadError` during a dropout window, repeats the last
    reading during a stuck window, and multiplies power readings by the
    event magnitude during a spike window.  Cluster-targeted events
    corrupt only that cluster's reading (the chip total is re-summed).
    """

    def __init__(self, inner: PowerSensor, schedule: FaultSchedule, clock):
        self._inner = inner
        self._schedule = schedule
        self._clock = clock
        #: Cluster watts frozen at entry of the active targeted-stuck window.
        self._stuck_hold: Optional[Tuple[object, float]] = None
        self.dropouts = 0
        self.stuck_reads = 0
        self.spikes = 0

    @property
    def last_sample(self) -> Optional[SensorSample]:
        return self._inner.last_sample

    def sample(self) -> SensorSample:
        now = self._clock()
        if self._schedule.active(now, FaultKind.SENSOR_DROPOUT) is not None:
            self.dropouts += 1
            raise SensorReadError(f"power sensor dropout at t={now:.3f}")
        previous = self._inner.last_sample
        stuck = self._schedule.active(now, FaultKind.SENSOR_STUCK)
        if stuck is not None and previous is not None and stuck.target is None:
            self.stuck_reads += 1
            return previous
        sample = self._inner.sample()
        if stuck is not None and previous is not None and stuck.target is not None:
            # Freeze the cluster's reading at its window-entry value; a
            # stale register does not track the previous tick.
            if self._stuck_hold is None or self._stuck_hold[0] is not stuck:
                held = previous.cluster_power_w.get(stuck.target)
                self._stuck_hold = (stuck, held) if held is not None else None
            if self._stuck_hold is not None:
                sample = self._replace_cluster_power(
                    sample, stuck.target, self._stuck_hold[1]
                )
                self.stuck_reads += 1
        elif stuck is None:
            self._stuck_hold = None
        spike = self._schedule.active(now, FaultKind.SENSOR_SPIKE)
        if spike is not None:
            sample = self._spiked(sample, spike.target, spike.magnitude)
            self.spikes += 1
        return sample

    @staticmethod
    def _replace_cluster_power(
        sample: SensorSample, cluster_id: str, watts: Optional[float]
    ) -> SensorSample:
        if watts is None or cluster_id not in sample.cluster_power_w:
            return sample
        power = dict(sample.cluster_power_w)
        power[cluster_id] = watts
        return SensorSample(
            chip_power_w=sum(power.values()),
            cluster_power_w=power,
            cluster_frequency_mhz=sample.cluster_frequency_mhz,
            cluster_voltage_v=sample.cluster_voltage_v,
        )

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        stuck = None
        if self._stuck_hold is not None:
            event, watts = self._stuck_hold
            index = next(
                i for i, e in enumerate(self._schedule.events) if e is event
            )
            stuck = {"event_index": index, "watts": watts}
        return {
            "stuck_hold": stuck,
            "dropouts": self.dropouts,
            "stuck_reads": self.stuck_reads,
            "spikes": self.spikes,
        }

    def restore_state(self, sim, state: Dict[str, object]) -> None:
        stuck = state["stuck_hold"]
        if stuck is None:
            self._stuck_hold = None
        else:
            # Re-bind to this process's event object: the stuck-window
            # entry test compares event identity, so the hold must point
            # at the same schedule slot the original run froze on.
            self._stuck_hold = (
                self._schedule.events[stuck["event_index"]],
                stuck["watts"],
            )
        self.dropouts = state["dropouts"]
        self.stuck_reads = state["stuck_reads"]
        self.spikes = state["spikes"]

    @staticmethod
    def _spiked(
        sample: SensorSample, cluster_id: Optional[str], factor: float
    ) -> SensorSample:
        power = {
            cid: watts * (factor if cluster_id in (None, cid) else 1.0)
            for cid, watts in sample.cluster_power_w.items()
        }
        return SensorSample(
            chip_power_w=sum(power.values()),
            cluster_power_w=power,
            cluster_frequency_mhz=sample.cluster_frequency_mhz,
            cluster_voltage_v=sample.cluster_voltage_v,
        )


class FaultyThermalSensor:
    """A :class:`ThermalSensor` front end applying scheduled thermal faults.

    Drop-in for the engine's thermal sensor attribute: during a
    :attr:`FaultKind.THERMAL_SENSOR_STUCK` window ``sample()`` repeats the
    last reading (stale thermal zone register); a cluster-targeted event
    freezes only that cluster's reading at its window-entry value.  The
    physics (:class:`~repro.hw.thermal.ThermalModel`) keeps heating
    underneath -- only the supervisor's view goes blind.
    """

    def __init__(self, inner: ThermalSensor, schedule: FaultSchedule, clock):
        self._inner = inner
        self._schedule = schedule
        self._clock = clock
        #: Cluster temperature frozen at entry of the active targeted window.
        self._stuck_hold: Optional[Tuple[object, float]] = None
        self.stuck_reads = 0

    @property
    def last_sample(self) -> Optional[ThermalSample]:
        return self._inner.last_sample

    def sample(self) -> ThermalSample:
        now = self._clock()
        previous = self._inner.last_sample
        stuck = self._schedule.active(now, FaultKind.THERMAL_SENSOR_STUCK)
        if stuck is not None and previous is not None and stuck.target is None:
            self.stuck_reads += 1
            return previous
        sample = self._inner.sample()
        if stuck is not None and previous is not None and stuck.target is not None:
            if self._stuck_hold is None or self._stuck_hold[0] is not stuck:
                held = previous.cluster_temperature_c.get(stuck.target)
                self._stuck_hold = (stuck, held) if held is not None else None
            if self._stuck_hold is not None:
                temps = dict(sample.cluster_temperature_c)
                temps[stuck.target] = self._stuck_hold[1]
                sample = ThermalSample(cluster_temperature_c=temps)
                self.stuck_reads += 1
        elif stuck is None:
            self._stuck_hold = None
        return sample

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        stuck = None
        if self._stuck_hold is not None:
            event, temp = self._stuck_hold
            index = next(
                i for i, e in enumerate(self._schedule.events) if e is event
            )
            stuck = {"event_index": index, "temp": temp}
        return {"stuck_hold": stuck, "stuck_reads": self.stuck_reads}

    def restore_state(self, sim, state: Dict[str, object]) -> None:
        stuck = state["stuck_hold"]
        if stuck is None:
            self._stuck_hold = None
        else:
            # Re-bind to this process's event object (identity-compared).
            self._stuck_hold = (
                self._schedule.events[stuck["event_index"]],
                stuck["temp"],
            )
        self.stuck_reads = state["stuck_reads"]


class FaultyCounters:
    """A :class:`~repro.hw.counters.CounterEmitter` front end for counter faults.

    Drop-in for the estimation pipeline's emitter: during a
    :attr:`FaultKind.COUNTER_BIAS` window every counter of the targeted
    cluster's cores reads ``magnitude`` times its true value; during a
    :attr:`FaultKind.COUNTER_DROPOUT` window they all read zero (an
    offlined counter bank).  The inner emitter is always sampled first,
    so the RNG advances identically with and without active windows and
    post-window behaviour is bit-identical to a fault-free run.
    """

    def __init__(self, inner, schedule: FaultSchedule, clock, core_cluster: Dict[str, str]):
        self._inner = inner
        self._schedule = schedule
        self._clock = clock
        self._core_cluster = dict(core_cluster)
        self._last_sample: Optional[CounterSample] = None
        self.bias_reads = 0
        self.dropout_reads = 0

    @property
    def config(self):
        return self._inner.config

    @property
    def last_sample(self) -> Optional[CounterSample]:
        return self._last_sample or self._inner.last_sample

    def sample(self, time_s: float, dt: float) -> CounterSample:
        sample = self._inner.sample(time_s, dt)
        now = self._clock()
        bias = self._schedule.active(now, FaultKind.COUNTER_BIAS)
        dropout = self._schedule.active(now, FaultKind.COUNTER_DROPOUT)
        if bias is not None or dropout is not None:
            core_counters: Dict[str, Dict[str, float]] = {}
            for core_id, counters in sample.core_counters.items():
                cluster_id = self._core_cluster.get(core_id)
                if (
                    dropout is not None
                    and self._schedule.active(
                        now, FaultKind.COUNTER_DROPOUT, cluster_id
                    )
                    is not None
                ):
                    self.dropout_reads += 1
                    core_counters[core_id] = dict.fromkeys(COUNTER_NAMES, 0.0)
                    continue
                if (
                    bias is not None
                    and self._schedule.active(
                        now, FaultKind.COUNTER_BIAS, cluster_id
                    )
                    is not None
                ):
                    self.bias_reads += 1
                    factor = bias.magnitude
                    core_counters[core_id] = {
                        name: value * factor for name, value in counters.items()
                    }
                    continue
                core_counters[core_id] = counters
            sample = CounterSample(time_s=sample.time_s, core_counters=core_counters)
        self._last_sample = sample
        return sample

    # -- checkpoint passthrough ----------------------------------------
    def rng_state(self):
        return self._inner.rng_state()

    def set_rng_state(self, state) -> None:
        self._inner.set_rng_state(state)

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "bias_reads": self.bias_reads,
            "dropout_reads": self.dropout_reads,
        }

    def restore_state(self, sim, state: Dict[str, object]) -> None:
        self.bias_reads = state["bias_reads"]
        self.dropout_reads = state["dropout_reads"]


class FaultInjector:
    """Wires a :class:`FaultSchedule` into a running simulation.

    Usage::

        injector = FaultInjector(sim, schedule).attach()
        sim.run(60.0)
        print(injector.stats())

    Attach exactly once, before the first tick.
    """

    def __init__(self, sim, schedule: FaultSchedule):
        self.sim = sim
        self.schedule = schedule
        self._attached = False
        #: Delayed DVFS requests: (due tick, cluster, level index).
        self._pending_dvfs: List[Tuple[int, Cluster, int]] = []
        #: Hotplug events currently applied (index into schedule order).
        self._unplugged: Dict[int, str] = {}
        self._beats_seen: Dict[str, float] = {}
        self.dvfs_dropped = 0
        self.dvfs_delayed = 0
        self.migrations_failed = 0
        self.heartbeats_lost = 0
        self.unplugs = 0
        self.replugs = 0
        self.cooling_degraded_ticks = 0
        self.runaway_ticks = 0
        self.drift_ticks = 0
        #: Whether any scheduled fault perturbs the thermal *physics*
        #: (sensor-stuck only blinds the reading path).
        self._has_thermal_model_faults = any(
            e.kind in (FaultKind.COOLING_DEGRADED, FaultKind.THERMAL_RUNAWAY)
            for e in schedule
        )
        #: Whether the schedule walks any cluster's true power draw.
        self._has_power_drift = any(
            e.kind is FaultKind.POWER_MODEL_DRIFT for e in schedule
        )

    # ------------------------------------------------------------------
    def attach(self) -> "FaultInjector":
        if self._attached:
            raise RuntimeError("fault injector already attached")
        self._attached = True
        sim = self.sim
        thermal_kinds = sorted(
            {e.kind.value for e in self.schedule if e.kind in THERMAL_FAULTS}
        )
        if thermal_kinds and sim.thermal is None:
            raise ValueError(
                f"schedule contains thermal faults ({', '.join(thermal_kinds)}) "
                "but the simulation has no thermal tracking; set "
                "SimConfig.thermal"
            )
        counter_kinds = sorted(
            {e.kind.value for e in self.schedule if e.kind in COUNTER_FAULTS}
        )
        if counter_kinds and getattr(sim, "estimation", None) is None:
            raise ValueError(
                f"schedule contains counter faults ({', '.join(counter_kinds)}) "
                "but the simulation has no estimation pipeline; set "
                "SimConfig.estimation"
            )
        sim.sensor = FaultySensor(sim.sensor, self.schedule, lambda: sim.now)
        if self.schedule.of_kind(FaultKind.THERMAL_SENSOR_STUCK):
            sim.thermal_sensor = FaultyThermalSensor(
                sim.thermal_sensor, self.schedule, lambda: sim.now
            )
        if counter_kinds:
            core_cluster = {
                core.core_id: cluster.cluster_id
                for cluster in sim.chip.clusters
                for core in cluster.cores
            }
            sim.estimation.emitter = FaultyCounters(
                sim.estimation.emitter, self.schedule, lambda: sim.now, core_cluster
            )
        self._wrap_dvfs(sim)
        self._wrap_migrate(sim)
        self._wrap_heartbeats(sim)
        self._wrap_step(sim)
        sim.fault_injector = self
        return self

    # ------------------------------------------------------------------
    # DVFS: dropped and delayed actuations
    # ------------------------------------------------------------------
    def _wrap_dvfs(self, sim) -> None:
        original_request = sim.request_level

        def request_level(cluster: Cluster, index: int) -> bool:
            drop = self.schedule.active(
                sim.now, FaultKind.DVFS_DROP, cluster.cluster_id
            )
            if drop is not None:
                # The write "succeeds" but the regulator never sees it.
                self.dvfs_dropped += 1
                return True
            delay = self.schedule.active(
                sim.now, FaultKind.DVFS_DELAY, cluster.cluster_id
            )
            if delay is not None:
                self.dvfs_delayed += 1
                self._pending_dvfs.append(
                    (sim.tick_index + delay.delay_ticks, cluster, index)
                )
                return True
            return original_request(cluster, index)

        def step_level(cluster: Cluster, delta: int) -> bool:
            index = cluster.vf_table.clamp_index(
                cluster.regulator.target_index + delta
            )
            return request_level(cluster, index)

        sim.request_level = request_level
        sim.step_level = step_level
        self._deliver_dvfs = original_request

    def _pump_delayed_dvfs(self) -> None:
        sim = self.sim
        due = [entry for entry in self._pending_dvfs if entry[0] <= sim.tick_index]
        if not due:
            return
        self._pending_dvfs = [
            entry for entry in self._pending_dvfs if entry[0] > sim.tick_index
        ]
        for _, cluster, index in due:
            self._deliver_dvfs(cluster, index)

    # ------------------------------------------------------------------
    # Migrations
    # ------------------------------------------------------------------
    def _wrap_migrate(self, sim) -> None:
        original_migrate = sim.migrate

        def migrate(task, destination):
            fault = self.schedule.active(
                sim.now, FaultKind.MIGRATION_FAIL, task.name
            )
            if fault is not None:
                self.migrations_failed += 1
                return sim.failed_migration_record(task, destination)
            return original_migrate(task, destination)

        sim.migrate = migrate

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _wrap_heartbeats(self, sim) -> None:
        if not self.schedule.of_kind(FaultKind.HEARTBEAT_LOSS):
            return
        # The wrapper seeds its replay state from task.total_beats:
        # observation barrier first (no-op on the reference engine).
        sim.sync()
        for task in sim.tasks:
            self._wrap_task_heartbeats(task)

    def _wrap_task_heartbeats(self, task) -> None:
        original_record = task.hrm.record
        self._beats_seen[task.name] = task.total_beats

        def record(t: float, total_beats: float) -> None:
            fault = self.schedule.active(
                self.sim.now, FaultKind.HEARTBEAT_LOSS, task.name
            )
            if fault is not None:
                # Beats emitted in the window never reach the monitor;
                # the observed rate collapses while real work continues.
                self.heartbeats_lost += 1
                original_record(t, self._beats_seen[task.name])
                return
            self._beats_seen[task.name] = total_beats
            original_record(t, total_beats)

        task.hrm.record = record

    # ------------------------------------------------------------------
    # Hotplug + per-tick pump
    # ------------------------------------------------------------------
    def _apply_hotplug(self) -> None:
        sim = self.sim
        for idx, event in enumerate(self.schedule.events):
            if event.kind is not FaultKind.HOTPLUG:
                continue
            cluster_id = event.target
            if cluster_id is None:
                continue
            active = event.active_at(sim.now)
            if active and idx not in self._unplugged:
                self._unplugged[idx] = cluster_id
                if cluster_id not in sim.offline_clusters:
                    sim.hotplug_out(sim.chip.cluster(cluster_id))
                    self.unplugs += 1
            elif not active and idx in self._unplugged and sim.now >= event.end_s:
                del self._unplugged[idx]
                # Replug only if no other active window still holds it out.
                if cluster_id not in self._unplugged.values():
                    sim.hotplug_in(sim.chip.cluster(cluster_id))
                    self.replugs += 1

    def _apply_thermal(self) -> None:
        """Drive the thermal model's fault hooks from the schedule.

        Recomputed statelessly from the schedule every tick (no window
        entry/exit bookkeeping to snapshot): the model's resistance
        factor and heat injection are simply *set* to whatever the
        currently-active windows dictate, 1.0 / 0 W otherwise.
        """
        sim = self.sim
        if not self._has_thermal_model_faults or sim.thermal is None:
            return
        for cluster in sim.chip.clusters:
            cluster_id = cluster.cluster_id
            cooling = self.schedule.active(
                sim.now, FaultKind.COOLING_DEGRADED, cluster_id
            )
            sim.thermal.set_resistance_factor(
                cluster_id, cooling.magnitude if cooling is not None else 1.0
            )
            runaway = self.schedule.active(
                sim.now, FaultKind.THERMAL_RUNAWAY, cluster_id
            )
            sim.thermal.set_power_injection(
                cluster_id, runaway.magnitude if runaway is not None else 0.0
            )
            if cooling is not None:
                self.cooling_degraded_ticks += 1
            if runaway is not None:
                self.runaway_ticks += 1

    def _apply_power_drift(self) -> None:
        """Walk cluster power-draw factors from the schedule.

        Stateless like :meth:`_apply_thermal`: each cluster's
        ``drift_factor`` is *set* every tick to the active window's ramp
        value (1 at window entry, ``1 + magnitude`` at exit -- a slow
        coefficient walk the fitted model has to chase), or back to 1.0
        outside any window.
        """
        sim = self.sim
        if not self._has_power_drift:
            return
        for cluster in sim.chip.clusters:
            drift = self.schedule.active(
                sim.now, FaultKind.POWER_MODEL_DRIFT, cluster.cluster_id
            )
            if drift is None:
                cluster.drift_factor = 1.0
            else:
                progress = (sim.now - drift.start_s) / drift.duration_s
                cluster.drift_factor = 1.0 + drift.magnitude * progress
                self.drift_ticks += 1

    def _wrap_step(self, sim) -> None:
        original_step = sim.step

        def step() -> None:
            self._pump_delayed_dvfs()
            self._apply_hotplug()
            self._apply_thermal()
            self._apply_power_drift()
            original_step()

        sim.step = step

    # ------------------------------------------------------------------
    # Snapshot/restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """All mutable injector state, JSON-serialisable."""
        return {
            "pending_dvfs": [
                [due_tick, cluster.cluster_id, index]
                for due_tick, cluster, index in self._pending_dvfs
            ],
            "unplugged": [
                [index, cluster_id] for index, cluster_id in self._unplugged.items()
            ],
            "beats_seen": [
                [name, beats] for name, beats in self._beats_seen.items()
            ],
            "dvfs_dropped": self.dvfs_dropped,
            "dvfs_delayed": self.dvfs_delayed,
            "migrations_failed": self.migrations_failed,
            "heartbeats_lost": self.heartbeats_lost,
            "unplugs": self.unplugs,
            "replugs": self.replugs,
            "cooling_degraded_ticks": self.cooling_degraded_ticks,
            "runaway_ticks": self.runaway_ticks,
            "drift_ticks": self.drift_ticks,
        }

    def restore_state(self, sim, state: Dict[str, object]) -> None:
        """Apply a snapshot; the injector must already be attached to ``sim``."""
        self._pending_dvfs = [
            (due_tick, sim.chip.cluster(cluster_id), index)
            for due_tick, cluster_id, index in state["pending_dvfs"]
        ]
        self._unplugged = {
            int(index): cluster_id for index, cluster_id in state["unplugged"]
        }
        self._beats_seen = {name: beats for name, beats in state["beats_seen"]}
        self.dvfs_dropped = state["dvfs_dropped"]
        self.dvfs_delayed = state["dvfs_delayed"]
        self.migrations_failed = state["migrations_failed"]
        self.heartbeats_lost = state["heartbeats_lost"]
        self.unplugs = state["unplugs"]
        self.replugs = state["replugs"]
        self.cooling_degraded_ticks = state.get("cooling_degraded_ticks", 0)
        self.runaway_ticks = state.get("runaway_ticks", 0)
        self.drift_ticks = state.get("drift_ticks", 0)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counts of injected faults, for reports and assertions."""
        sensor = self.sim.sensor
        emitter = getattr(getattr(self.sim, "estimation", None), "emitter", None)
        return {
            "sensor_dropouts": getattr(sensor, "dropouts", 0),
            "sensor_stuck_reads": getattr(sensor, "stuck_reads", 0),
            "sensor_spikes": getattr(sensor, "spikes", 0),
            "dvfs_dropped": self.dvfs_dropped,
            "dvfs_delayed": self.dvfs_delayed,
            "migrations_failed": self.migrations_failed,
            "heartbeats_lost": self.heartbeats_lost,
            "unplugs": self.unplugs,
            "replugs": self.replugs,
            "cooling_degraded_ticks": self.cooling_degraded_ticks,
            "runaway_ticks": self.runaway_ticks,
            "drift_ticks": self.drift_ticks,
            "thermal_stuck_reads": getattr(
                self.sim.thermal_sensor, "stuck_reads", 0
            ),
            "counter_bias_reads": getattr(emitter, "bias_reads", 0),
            "counter_dropout_reads": getattr(emitter, "dropout_reads", 0),
        }
