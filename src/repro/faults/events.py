"""Typed fault events and schedules.

The real TC2 platform fails in ways the idealised simulator never did:
hwmon reads time out or return stale registers, cpufreq transitions are
silently dropped by a busy regulator, cores get hot-unplugged by the
thermal framework, heartbeat messages are lost on a saturated system and
``sched_setaffinity`` calls fail.  The thermal path fails too: thermal
zone reads stick at a stale register (:attr:`FaultKind.THERMAL_SENSOR_STUCK`),
heatsinks clog or fans die so the package sheds heat more slowly
(:attr:`FaultKind.COOLING_DEGRADED`), and a wedged rail or runaway
leakage dumps extra heat the power model never accounted for
(:attr:`FaultKind.THERMAL_RUNAWAY`).  This module gives each of those a
first-class, schedulable representation so experiments can replay the
same disturbance against every governor.

A :class:`FaultEvent` is one fault window: a kind, a start time, a
duration and an optional target (cluster id for hardware faults, task
name for task faults; ``None`` targets everything the kind applies to).
A :class:`FaultSchedule` is an immutable collection of events with the
point queries the injector needs ("is a dropout active at ``t``?").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple


class FaultKind(str, Enum):
    """The fault taxonomy of the resilience study."""

    #: Power sensor returns no reading (hwmon read failure).
    SENSOR_DROPOUT = "sensor-dropout"
    #: Power sensor repeats its last reading (stale register).
    SENSOR_STUCK = "sensor-stuck"
    #: Power sensor multiplies readings by ``magnitude`` (glitch spike).
    SENSOR_SPIKE = "sensor-spike"
    #: DVFS level requests are silently dropped (cpufreq write lost).
    DVFS_DROP = "dvfs-drop"
    #: DVFS level requests are applied ``delay_ticks`` ticks late.
    DVFS_DELAY = "dvfs-delay"
    #: A cluster is hot-unplugged for the window, then replugged.
    HOTPLUG = "hotplug"
    #: Heartbeat delivery to the monitor is lost (work still happens).
    HEARTBEAT_LOSS = "heartbeat-loss"
    #: Migration requests fail without moving the task.
    MIGRATION_FAIL = "migration-fail"
    #: Thermal sensor repeats its last reading (stale thermal zone).
    THERMAL_SENSOR_STUCK = "thermal-sensor-stuck"
    #: Thermal resistance scales by ``magnitude`` (clogged heatsink,
    #: dead fan); > 1 means the cluster sheds heat more slowly.
    COOLING_DEGRADED = "cooling-degraded"
    #: ``magnitude`` extra watts of heat injected into the cluster
    #: (wedged rail / runaway leakage the power model cannot see).
    THERMAL_RUNAWAY = "thermal-runaway"
    #: Performance counters read ``magnitude`` times their true value
    #: (a firmware scaling bug biasing the power model's inputs).
    COUNTER_BIAS = "counter-bias"
    #: Performance counters read zero (counter bank offlined / unreadable).
    COUNTER_DROPOUT = "counter-dropout"
    #: The cluster's true power walks away from the fitted model: draw is
    #: scaled by a factor ramping linearly from 1 to ``1 + magnitude``
    #: over the window (silicon aging / temperature-dependent leakage).
    POWER_MODEL_DRIFT = "power-model-drift"
    #: A fleet worker process is killed with SIGKILL (OOM killer, node
    #: crash); no cleanup handlers run and its chip goes dark mid-epoch.
    WORKER_KILL = "worker-kill"
    #: A fleet worker's main loop wedges (deadlock, GC pause, NFS hang):
    #: the process stays alive but stops answering for ``stall_s`` wall
    #: seconds, so only heartbeat/result timeouts can detect it.
    WORKER_STALL = "worker-stall"
    #: A fleet worker's outbound epoch results are lost in transit
    #: (dropped datagrams, a flaky overlay); the work itself completes
    #: and bounded request retries must recover the receipt.
    WORKER_MSG_LOSS = "worker-msg-loss"


@dataclass(frozen=True)
class KindSpec:
    """Registration record for one :class:`FaultKind`.

    The target/requirement groupings the injector and campaign harness
    consult all derive from this one registry, so adding a kind is a
    single entry here -- the frozensets below, the ``attach`` guards and
    ``parse_fault_kind`` diagnostics follow automatically.

    Attributes:
        targets: What the event's ``target`` field names -- ``"cluster"``,
            ``"task"``, ``"chip"`` (a fleet worker's chip id), or ``None``
            when the kind addresses a chip-global subject (the power
            sensor).
        requires: Opt-in subsystem the kind needs to have any effect:
            ``"thermal"`` (``SimConfig.thermal``), ``"counters"``
            (``SimConfig.estimation``), ``"fleet"`` (a
            :class:`~repro.fleet.FleetSupervisor` run -- these kinds are
            injected between processes, not inside one simulation), or
            ``None``.
    """

    targets: Optional[str] = None
    requires: Optional[str] = None


_KIND_SPECS = {
    FaultKind.SENSOR_DROPOUT: KindSpec(),
    FaultKind.SENSOR_STUCK: KindSpec(),
    FaultKind.SENSOR_SPIKE: KindSpec(),
    FaultKind.DVFS_DROP: KindSpec(targets="cluster"),
    FaultKind.DVFS_DELAY: KindSpec(targets="cluster"),
    FaultKind.HOTPLUG: KindSpec(targets="cluster"),
    FaultKind.HEARTBEAT_LOSS: KindSpec(targets="task"),
    FaultKind.MIGRATION_FAIL: KindSpec(targets="task"),
    FaultKind.THERMAL_SENSOR_STUCK: KindSpec(targets="cluster", requires="thermal"),
    FaultKind.COOLING_DEGRADED: KindSpec(targets="cluster", requires="thermal"),
    FaultKind.THERMAL_RUNAWAY: KindSpec(targets="cluster", requires="thermal"),
    FaultKind.COUNTER_BIAS: KindSpec(targets="cluster", requires="counters"),
    FaultKind.COUNTER_DROPOUT: KindSpec(targets="cluster", requires="counters"),
    FaultKind.POWER_MODEL_DRIFT: KindSpec(targets="cluster"),
    FaultKind.WORKER_KILL: KindSpec(targets="chip", requires="fleet"),
    FaultKind.WORKER_STALL: KindSpec(targets="chip", requires="fleet"),
    FaultKind.WORKER_MSG_LOSS: KindSpec(targets="chip", requires="fleet"),
}
def _check_registry_complete() -> None:
    if set(_KIND_SPECS) != set(FaultKind):
        missing = {kind.value for kind in FaultKind} - {
            kind.value for kind in _KIND_SPECS
        }
        raise RuntimeError(
            "every FaultKind needs a KindSpec registration; "
            f"missing: {sorted(missing)}"
        )


_check_registry_complete()


def _kinds_where(predicate) -> frozenset:
    return frozenset(
        kind for kind, spec in _KIND_SPECS.items() if predicate(spec)
    )


#: Kinds whose ``target`` names a cluster.
CLUSTER_FAULTS = _kinds_where(lambda spec: spec.targets == "cluster")
#: Kinds whose ``target`` names a task.
TASK_FAULTS = _kinds_where(lambda spec: spec.targets == "task")
#: Kinds that require simulation-time thermal tracking to have any effect.
THERMAL_FAULTS = _kinds_where(lambda spec: spec.requires == "thermal")
#: Kinds that require estimated-power operation (the counter pipeline).
COUNTER_FAULTS = _kinds_where(lambda spec: spec.requires == "counters")
#: Kinds injected at the fleet tier (worker processes), not inside one
#: simulation; single-chip campaigns must refuse them.
FLEET_FAULTS = _kinds_where(lambda spec: spec.requires == "fleet")


def parse_fault_kind(name: str) -> FaultKind:
    """Look up a :class:`FaultKind` by its string value.

    Raises a :class:`ValueError` naming every valid kind on a miss,
    instead of the bare enum ``KeyError`` callers would otherwise see.
    """
    try:
        return FaultKind(name)
    except ValueError:
        valid = ", ".join(sorted(kind.value for kind in FaultKind))
        raise ValueError(
            f"unknown fault kind {name!r}; valid kinds: {valid}"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One fault window.

    Attributes:
        kind: What fails.
        start_s: Window start (simulation time, inclusive).
        duration_s: Window length; must be positive.
        target: Cluster id / task name the fault is scoped to, or
            ``None`` for "every matching subject".
        magnitude: Kind-specific intensity (spike multiplier for
            :attr:`FaultKind.SENSOR_SPIKE`); must be non-negative so a
            spiked reading can never go negative.
        delay_ticks: Actuation delay for :attr:`FaultKind.DVFS_DELAY`.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    target: Optional[str] = None
    magnitude: float = 1.0
    delay_ticks: int = 5

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("fault start must be non-negative")
        if not self.duration_s > 0:
            raise ValueError("fault duration must be positive")
        if not (self.magnitude >= 0 and math.isfinite(self.magnitude)):
            raise ValueError("fault magnitude must be finite and non-negative")
        if self.delay_ticks < 1:
            raise ValueError("delay must be at least one tick")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s

    def matches(self, subject: Optional[str]) -> bool:
        """Whether this event applies to ``subject`` (None = wildcard)."""
        return self.target is None or subject is None or self.target == subject

    @property
    def window(self) -> Tuple[float, float]:
        return (self.start_s, self.end_s)


class FaultSchedule:
    """An immutable set of fault events with point queries."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start_s, e.kind.value))
        )

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: FaultKind) -> List[FaultEvent]:
        return [e for e in self._events if e.kind is kind]

    def active(
        self, t: float, kind: FaultKind, subject: Optional[str] = None
    ) -> Optional[FaultEvent]:
        """The first event of ``kind`` active at ``t`` for ``subject``."""
        for event in self._events:
            if event.kind is kind and event.active_at(t) and event.matches(subject):
                return event
        return None

    def windows(
        self, kind: Optional[FaultKind] = None, target: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(start, end) windows, optionally filtered by kind/target."""
        return [
            e.window
            for e in self._events
            if (kind is None or e.kind is kind)
            and (target is None or e.target == target)
        ]

    def end_s(self) -> float:
        """When the last fault window closes (0 for an empty schedule)."""
        return max((e.end_s for e in self._events), default=0.0)

    def extended(self, events: Iterable[FaultEvent]) -> "FaultSchedule":
        return FaultSchedule(self._events + tuple(events))


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------
def single_fault(
    kind: FaultKind,
    start_s: float,
    duration_s: float,
    target: Optional[str] = None,
    **kwargs,
) -> FaultSchedule:
    """A schedule with exactly one fault window."""
    return FaultSchedule(
        [FaultEvent(kind, start_s, duration_s, target=target, **kwargs)]
    )


def periodic_faults(
    kind: FaultKind,
    period_s: float,
    duration_s: float,
    until_s: float,
    start_s: float = 0.0,
    target: Optional[str] = None,
    **kwargs,
) -> FaultSchedule:
    """Evenly spaced fault windows: one every ``period_s`` until ``until_s``.

    The campaign harness expresses fault *rates* through this builder:
    the fraction of time under fault is ``duration_s / period_s``.
    """
    if period_s <= 0:
        raise ValueError("period must be positive")
    if duration_s > period_s:
        raise ValueError("fault windows must not overlap: duration <= period")
    events = []
    t = start_s
    while t < until_s:
        events.append(FaultEvent(kind, t, duration_s, target=target, **kwargs))
        t += period_s
    return FaultSchedule(events)


def random_faults(
    kind: FaultKind,
    rate_hz: float,
    mean_duration_s: float,
    horizon_s: float,
    seed: int,
    targets: Sequence[Optional[str]] = (None,),
    **kwargs,
) -> FaultSchedule:
    """Poisson-arrival fault windows with exponential durations.

    Arrivals occur at ``rate_hz`` over ``[0, horizon_s)``; each window's
    length is exponential with mean ``mean_duration_s`` and its target is
    drawn uniformly from ``targets``.  Fully determined by ``seed``.
    """
    if rate_hz <= 0 or mean_duration_s <= 0:
        raise ValueError("rate and mean duration must be positive")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    t = rng.expovariate(rate_hz)
    while t < horizon_s:
        duration = max(1e-3, rng.expovariate(1.0 / mean_duration_s))
        target = rng.choice(list(targets))
        events.append(FaultEvent(kind, t, duration, target=target, **kwargs))
        t += rng.expovariate(rate_hz)
    return FaultSchedule(events)
