"""Fault injection: scheduled sensing/actuation/topology failures.

The robustness subsystem.  A :class:`FaultSchedule` of typed
:class:`FaultEvent` windows is interposed on the engine's narrow seams by
a :class:`FaultInjector`, so any governor can be driven through sensor
dropouts, stuck or spiking readings, dropped/delayed DVFS transitions,
cluster hot-unplug/replug, heartbeat delivery loss, migration failures
and thermal faults (stuck thermal zones, degraded cooling, thermal
runaway) without policy-code changes.  The resilience counterpart lives
in :mod:`repro.core.resilience`; fault campaigns in
:mod:`repro.experiments.campaigns`.
"""

from .events import (
    CLUSTER_FAULTS,
    TASK_FAULTS,
    THERMAL_FAULTS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    parse_fault_kind,
    periodic_faults,
    random_faults,
    single_fault,
)
from .injector import FaultInjector, FaultySensor, FaultyThermalSensor

__all__ = [
    "CLUSTER_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultySensor",
    "FaultyThermalSensor",
    "TASK_FAULTS",
    "THERMAL_FAULTS",
    "parse_fault_kind",
    "periodic_faults",
    "random_faults",
    "single_fault",
]
