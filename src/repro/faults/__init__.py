"""Fault injection: scheduled sensing/actuation/topology failures.

The robustness subsystem.  A :class:`FaultSchedule` of typed
:class:`FaultEvent` windows is interposed on the engine's narrow seams by
a :class:`FaultInjector`, so any governor can be driven through sensor
dropouts, stuck or spiking readings, dropped/delayed DVFS transitions,
cluster hot-unplug/replug, heartbeat delivery loss, migration failures,
thermal faults (stuck thermal zones, degraded cooling, thermal runaway)
and estimated-power faults (biased or dropped performance counters,
power-model drift) without policy-code changes.  The resilience
counterpart lives in :mod:`repro.core.resilience`; fault campaigns in
:mod:`repro.experiments.campaigns`.
"""

from .events import (
    CLUSTER_FAULTS,
    COUNTER_FAULTS,
    FLEET_FAULTS,
    TASK_FAULTS,
    THERMAL_FAULTS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    KindSpec,
    parse_fault_kind,
    periodic_faults,
    random_faults,
    single_fault,
)
from .injector import (
    FaultInjector,
    FaultyCounters,
    FaultySensor,
    FaultyThermalSensor,
)

__all__ = [
    "CLUSTER_FAULTS",
    "COUNTER_FAULTS",
    "FLEET_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultyCounters",
    "FaultySensor",
    "FaultyThermalSensor",
    "KindSpec",
    "TASK_FAULTS",
    "THERMAL_FAULTS",
    "parse_fault_kind",
    "periodic_faults",
    "random_faults",
    "single_fault",
]
