"""Measurement collection: QoS misses, power, frequency, migrations.

Reproduces the quantities the paper reports:

* Figures 4/6 -- "percentage of time the reference heart rate range of any
  task in the workload is not met, that is ... the observed heart rate was
  smaller than the minimum prescribed heart rate for any of the task".
* Figure 5 -- average chip power over the run.
* Figures 7/8 -- per-task normalised heart-rate time series and the
  per-task fraction of time spent outside the goal range.

A warm-up prefix is excluded from the summary statistics: the sliding
heart-rate window needs to fill before QoS judgements are meaningful (the
real platform similarly discards application start-up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tasks.task import Task


@dataclass
class TaskSample:
    """Per-task observation for one tick."""

    heart_rate: float
    below_min: bool
    outside_range: bool
    granted_pus: float
    demand_pus: float


@dataclass
class TickSample:
    """Chip-wide observation for one tick.

    ``cluster_temperature_c`` is ``None`` unless the run tracks thermals
    (``SimConfig.thermal``); journals and telemetry digests omit the field
    entirely when it is ``None`` so thermal-free runs stay byte-identical
    to runs recorded before thermal tracking existed.
    ``estimated_chip_power_w`` follows the same rule for estimated-power
    runs (``SimConfig.estimation``): it is the chip power the governors
    were served, ``None`` when estimation is off.
    """

    time_s: float
    chip_power_w: float
    cluster_power_w: Dict[str, float]
    cluster_frequency_mhz: Dict[str, float]
    tasks: Dict[str, TaskSample]
    cluster_temperature_c: Optional[Dict[str, float]] = None
    estimated_chip_power_w: Optional[float] = None


class TickColumnBuffer:
    """Preallocated column storage for deferred telemetry rows.

    One buffer holds consecutive ticks sharing a task roster (``names``):
    per-task quantities land in capacity-doubling 2-D numpy arrays via
    slice assignment, the per-tick python payloads (cluster dicts,
    thermal/estimation extras) in plain lists.  ``materialise`` converts
    the whole buffer to :class:`TickSample` objects in one pass --
    ``ndarray.tolist`` yields exactly the python floats/bools a per-tick
    conversion would have produced, so deferral is unobservable.

    Requires numpy (only the columnar engine constructs one).
    """

    __slots__ = (
        "names", "cap", "size", "time_s", "chip_w",
        "hr", "below", "outside", "sup", "con", "aux",
    )

    def __init__(self, names: Tuple[str, ...], capacity: int = 128):
        import numpy as np

        n = len(names)
        self.names = names
        self.cap = capacity
        self.size = 0
        self.time_s = np.empty(capacity, dtype=float)
        self.chip_w = np.empty(capacity, dtype=float)
        self.hr = np.empty((capacity, n), dtype=float)
        self.below = np.empty((capacity, n), dtype=bool)
        self.outside = np.empty((capacity, n), dtype=bool)
        self.sup = np.empty((capacity, n), dtype=float)
        self.con = np.empty((capacity, n), dtype=float)
        #: (cluster_power, cluster_freq, temps, estimated_w) per tick.
        self.aux: List[tuple] = []

    def _grow(self) -> None:
        import numpy as np

        new_cap = self.cap * 2
        for name in ("time_s", "chip_w", "hr", "below", "outside", "sup", "con"):
            old = getattr(self, name)
            shape = (new_cap,) + old.shape[1:]
            fresh = np.empty(shape, dtype=old.dtype)
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        self.cap = new_cap

    def append(self, time_s, chip_w, hr, below, outside, sup, con, aux) -> None:
        k = self.size
        if k == self.cap:
            self._grow()
        self.time_s[k] = time_s
        self.chip_w[k] = chip_w
        self.hr[k] = hr
        self.below[k] = below
        self.outside[k] = outside
        self.sup[k] = sup
        self.con[k] = con
        self.aux.append(aux)
        self.size = k + 1

    def materialise(self, out: List[TickSample]) -> None:
        """Append one :class:`TickSample` per stored tick to ``out``."""
        k = self.size
        names = self.names
        times = self.time_s[:k].tolist()
        chips = self.chip_w[:k].tolist()
        hr_l = self.hr[:k].tolist()
        below_l = self.below[:k].tolist()
        outside_l = self.outside[:k].tolist()
        sup_l = self.sup[:k].tolist()
        con_l = self.con[:k].tolist()
        for i in range(k):
            cpw, cfm, temps, est = self.aux[i]
            tasks = {
                name: TaskSample(h, b, o, s, c)
                for name, h, b, o, s, c in zip(
                    names, hr_l[i], below_l[i], outside_l[i], sup_l[i], con_l[i]
                )
            }
            out.append(
                TickSample(
                    time_s=times[i],
                    chip_power_w=chips[i],
                    cluster_power_w=cpw,
                    cluster_frequency_mhz=cfm,
                    tasks=tasks,
                    cluster_temperature_c=temps,
                    estimated_chip_power_w=est,
                )
            )


@dataclass
class MetricsCollector:
    """Accumulates tick samples and derives the paper's summary metrics."""

    warmup_s: float = 2.0
    samples: List[TickSample] = field(default_factory=list)
    #: Market-invariant violations collected by the engine's non-strict
    #: auditor (``SimConfig.audit``); empty when auditing is off or clean.
    audit_violations: List[str] = field(default_factory=list)

    def record(
        self,
        time_s: float,
        chip_power_w: float,
        cluster_power_w: Dict[str, float],
        cluster_frequency_mhz: Dict[str, float],
        tasks: Sequence[Task],
        cluster_temperature_c: Optional[Dict[str, float]] = None,
        estimated_chip_power_w: Optional[float] = None,
    ) -> None:
        """Record one tick's state for the given active tasks."""
        task_samples: Dict[str, TaskSample] = {}
        for task in tasks:
            hr = task.observed_heart_rate()
            rng = task.hr_range
            # Inlined HeartRateRange.below/contains (same expressions) --
            # this runs once per task per tick.
            lo = rng.min_hr * (1.0 - rng._REL_EPS)
            hi = rng.max_hr * (1.0 + rng._REL_EPS)
            task_samples[task.name] = TaskSample(
                hr,
                hr < lo,
                not (lo <= hr <= hi),
                task.last_supply_pus,
                task.last_consumed_pus,
            )
        self.samples.append(
            TickSample(
                time_s=time_s,
                chip_power_w=chip_power_w,
                cluster_power_w=dict(cluster_power_w),
                cluster_frequency_mhz=dict(cluster_frequency_mhz),
                tasks=task_samples,
                cluster_temperature_c=(
                    None
                    if cluster_temperature_c is None
                    else dict(cluster_temperature_c)
                ),
                estimated_chip_power_w=estimated_chip_power_w,
            )
        )

    # -- internal -------------------------------------------------------------
    def _measured(self) -> List[TickSample]:
        return [s for s in self.samples if s.time_s >= self.warmup_s]

    # -- paper metrics ----------------------------------------------------------
    def any_task_miss_fraction(self) -> float:
        """Fraction of time any task's heart rate is below its minimum.

        This is the Figures 4/6 metric.
        """
        measured = self._measured()
        if not measured:
            return 0.0
        missed = sum(
            1 for s in measured if any(ts.below_min for ts in s.tasks.values())
        )
        return missed / len(measured)

    def task_below_fraction(self, task_name: str) -> float:
        """Fraction of time one task sits below its minimum heart rate."""
        measured = [s for s in self._measured() if task_name in s.tasks]
        if not measured:
            return 0.0
        return sum(1 for s in measured if s.tasks[task_name].below_min) / len(measured)

    def task_outside_range_fraction(self, task_name: str) -> float:
        """Fraction of time one task is outside [min_hr, max_hr] (Figure 7)."""
        measured = [s for s in self._measured() if task_name in s.tasks]
        if not measured:
            return 0.0
        return sum(1 for s in measured if s.tasks[task_name].outside_range) / len(measured)

    def mean_miss_fraction(self) -> float:
        """Mean over tasks of the per-task below-minimum fraction."""
        names = self.task_names()
        if not names:
            return 0.0
        return sum(self.task_below_fraction(n) for n in names) / len(names)

    def average_power_w(self) -> float:
        """Mean chip power over the measured window (Figure 5)."""
        measured = self._measured()
        if not measured:
            return 0.0
        return sum(s.chip_power_w for s in measured) / len(measured)

    def peak_power_w(self) -> float:
        measured = self._measured()
        return max((s.chip_power_w for s in measured), default=0.0)

    def time_above_power(self, threshold_w: float) -> float:
        """Fraction of measured time with chip power above ``threshold_w``."""
        measured = self._measured()
        if not measured:
            return 0.0
        return sum(1 for s in measured if s.chip_power_w > threshold_w) / len(measured)

    def energy_j(self, dt: float) -> float:
        """Total chip energy over the *measured* window (rectangle rule)."""
        return sum(s.chip_power_w for s in self._measured()) * dt

    def energy_per_beat_mj(self, tasks: Sequence[Task], dt: float) -> float:
        """Millijoules of chip energy per application heartbeat.

        The efficiency metric the paper's "meet demands at minimal
        energy" goal implies: chip energy divided by the total useful
        work (heartbeats) the workload produced.  Returns ``inf`` when no
        beats were produced.
        """
        total_beats = sum(task.total_beats for task in tasks)
        if total_beats <= 0.0:
            return float("inf")
        return 1000.0 * self.energy_j(dt) / total_beats

    def average_cluster_frequency_mhz(self, cluster_id: str) -> float:
        measured = self._measured()
        if not measured:
            return 0.0
        return sum(s.cluster_frequency_mhz.get(cluster_id, 0.0) for s in measured) / len(
            measured
        )

    def audit_violation_count(self) -> int:
        """Number of market-invariant violations the engine's auditor saw."""
        return len(self.audit_violations)

    # -- resilience metrics (fault campaigns) -----------------------------------
    @staticmethod
    def _in_windows(t: float, windows: Sequence[Tuple[float, float]]) -> bool:
        return any(start <= t < end for start, end in windows)

    def _miss_fraction_over(self, samples: Sequence[TickSample]) -> float:
        if not samples:
            return 0.0
        missed = sum(
            1 for s in samples if any(ts.below_min for ts in s.tasks.values())
        )
        return missed / len(samples)

    def miss_fraction_in_windows(
        self, windows: Sequence[Tuple[float, float]]
    ) -> float:
        """Any-task miss fraction over the ticks inside ``windows``.

        Fault windows are explicit measurement intervals, so no warm-up
        exclusion applies here.
        """
        return self._miss_fraction_over(
            [s for s in self.samples if self._in_windows(s.time_s, windows)]
        )

    def miss_fraction_outside_windows(
        self, windows: Sequence[Tuple[float, float]]
    ) -> float:
        """Any-task miss fraction over post-warm-up ticks outside ``windows``."""
        return self._miss_fraction_over(
            [s for s in self._measured() if not self._in_windows(s.time_s, windows)]
        )

    def tdp_violation_seconds(self, tdp_w: float, dt: float) -> float:
        """Seconds (over the whole run) with chip power above ``tdp_w``."""
        return dt * sum(1 for s in self.samples if s.chip_power_w > tdp_w)

    def recovery_time_s(
        self, after_s: float, settle_s: float, dt: float
    ) -> Optional[float]:
        """Time from ``after_s`` until QoS first holds for ``settle_s``.

        Scans forward from ``after_s`` for the first tick after which no
        task misses its heart-rate floor for ``settle_s`` of consecutive
        simulated time; returns that delay, or ``None`` if the run ends
        before QoS settles.  Used for time-to-recover after hot-replug.
        """
        window = max(1, round(settle_s / dt))
        tail = [s for s in self.samples if s.time_s >= after_s]
        clean = 0
        for index, sample in enumerate(tail):
            if any(ts.below_min for ts in sample.tasks.values()):
                clean = 0
            else:
                clean += 1
                if clean >= window:
                    return tail[index - clean + 1].time_s - after_s
        return None

    # -- tail QoS (overload campaigns) ------------------------------------------
    @staticmethod
    def percentile(values: Sequence[float], pct: float) -> float:
        """Nearest-rank percentile of ``values`` (``pct`` in [0, 100]).

        Nearest-rank (not interpolated) so the result is always an
        observed value and stays bit-stable across platforms -- these
        numbers land in golden campaign reports.  Returns 0.0 for an
        empty sequence.
        """
        if not values:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(values)
        if pct == 0.0:
            return ordered[0]
        rank = math.ceil(pct / 100.0 * len(ordered))
        return ordered[rank - 1]

    def task_below_percentiles(
        self,
        task_names: Optional[Sequence[str]] = None,
        percentiles: Sequence[float] = (50.0, 95.0, 99.0),
    ) -> Dict[str, float]:
        """Tail of the per-task below-minimum-heart-rate distribution.

        Computes each task's below-minimum fraction (the Figure 7 per-task
        metric) over ``task_names`` (default: every task ever observed)
        and reports the requested percentiles of that distribution, keyed
        ``"p50"``/``"p95"``/``"p99"``.  The overload campaigns read the
        tail over *admitted* stream tasks: means hide exactly the tasks a
        flash crowd starves.
        """
        names = list(task_names) if task_names is not None else self.task_names()
        fractions = [self.task_below_fraction(name) for name in names]
        return {
            f"p{pct:g}": self.percentile(fractions, pct) for pct in percentiles
        }

    def violation_fraction_percentiles(
        self,
        task_names: Optional[Sequence[str]] = None,
        percentiles: Sequence[float] = (50.0, 95.0, 99.0),
    ) -> Dict[str, float]:
        """Tail over *time* of the instantaneous QoS-violation rate.

        For every measured tick, the fraction of the named tasks alive at
        that tick whose heart rate sits below its minimum; the requested
        percentiles of that per-tick series are returned keyed
        ``"p50"``/``"p95"``/``"p99"``.  This is the overload headline
        metric: "at the p99-worst moment, how much of the admitted
        population was the system failing?" -- bounded and population-
        wide, where the per-task tail
        (:meth:`task_below_percentiles`) degenerates to the single
        unluckiest task.  Ticks where none of the named tasks are alive
        are skipped.
        """
        names = None if task_names is None else set(task_names)
        fractions: List[float] = []
        for sample in self._measured():
            relevant = [
                ts
                for name, ts in sample.tasks.items()
                if names is None or name in names
            ]
            if not relevant:
                continue
            fractions.append(
                sum(1 for ts in relevant if ts.below_min) / len(relevant)
            )
        return {
            f"p{pct:g}": self.percentile(fractions, pct) for pct in percentiles
        }

    # -- series (Figures 7/8) ---------------------------------------------------
    def task_names(self) -> List[str]:
        names: List[str] = []
        for sample in self.samples:
            for name in sample.tasks:
                if name not in names:
                    names.append(name)
        return names

    def heart_rate_series(
        self, task_name: str, normalize_by: Optional[float] = None
    ) -> Tuple[List[float], List[float]]:
        """(times, heart rates) for one task; optionally normalised."""
        times: List[float] = []
        rates: List[float] = []
        scale = 1.0 / normalize_by if normalize_by else 1.0
        for sample in self.samples:
            if task_name in sample.tasks:
                times.append(sample.time_s)
                rates.append(sample.tasks[task_name].heart_rate * scale)
        return times, rates

    def power_series(self) -> Tuple[List[float], List[float]]:
        return (
            [s.time_s for s in self.samples],
            [s.chip_power_w for s in self.samples],
        )

    def frequency_series(self, cluster_id: str) -> Tuple[List[float], List[float]]:
        return (
            [s.time_s for s in self.samples],
            [s.cluster_frequency_mhz.get(cluster_id, 0.0) for s in self.samples],
        )

    def temperature_series(self, cluster_id: str) -> Tuple[List[float], List[float]]:
        """(times, temperatures) for one cluster; empty without thermals."""
        times: List[float] = []
        temps: List[float] = []
        for sample in self.samples:
            if sample.cluster_temperature_c is None:
                continue
            if cluster_id in sample.cluster_temperature_c:
                times.append(sample.time_s)
                temps.append(sample.cluster_temperature_c[cluster_id])
        return times, temps

    def peak_temperature_c(self) -> Optional[float]:
        """Hottest recorded cluster temperature, or ``None`` without thermals."""
        peak: Optional[float] = None
        for sample in self.samples:
            if sample.cluster_temperature_c is None:
                continue
            hottest = max(sample.cluster_temperature_c.values())
            if peak is None or hottest > peak:
                peak = hottest
        return peak

    # -- estimated-power metrics (model-error campaigns) -------------------------
    def estimation_error_series(self) -> Tuple[List[float], List[float]]:
        """(times, |served − metered| watts); empty without estimation."""
        times: List[float] = []
        errors: List[float] = []
        for sample in self.samples:
            if sample.estimated_chip_power_w is None:
                continue
            times.append(sample.time_s)
            errors.append(abs(sample.estimated_chip_power_w - sample.chip_power_w))
        return times, errors

    def estimation_error_percentiles(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """Nearest-rank tail of the absolute served-vs-metered power error.

        The model-error campaign headline: how far off was the power
        signal the governors actually acted on?  Keys are ``"p50"`` etc.;
        all zeros without estimation samples.
        """
        _, errors = self.estimation_error_series()
        return {
            f"p{pct:g}": self.percentile(errors, pct) for pct in percentiles
        }
