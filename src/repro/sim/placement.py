"""Task-to-core placement state (the mapping ``M`` of the paper).

Pure bookkeeping: which task currently lives on which core, with the
cluster-level views the agents need (``T_c``, ``T_v``, priority sums
``R_c``/``R_v``/``R``).  Mutation goes through the simulator's migration
manager so costs are charged consistently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..hw.topology import Chip, Cluster, Core
from ..tasks.task import Task


class Placement:
    """Bidirectional task <-> core mapping over one chip."""

    def __init__(self, chip: Chip):
        self._chip = chip
        self._core_of: Dict[Task, str] = {}
        self._tasks_on: Dict[str, List[Task]] = {core.core_id: [] for core in chip.cores}

    @property
    def chip(self) -> Chip:
        return self._chip

    # -- queries ------------------------------------------------------------------
    def core_of(self, task: Task) -> Optional[Core]:
        """The core ``task`` is mapped to, or ``None`` if unplaced."""
        core_id = self._core_of.get(task)
        return self._chip.core(core_id) if core_id is not None else None

    def cluster_of(self, task: Task) -> Optional[Cluster]:
        core = self.core_of(task)
        return core.cluster if core is not None else None

    def tasks_on_core(self, core: Core) -> List[Task]:
        """``T_c``: tasks mapped to ``core`` (insertion order)."""
        return list(self._tasks_on[core.core_id])

    def tasks_on_cluster(self, cluster: Cluster) -> List[Task]:
        """``T_v``: tasks mapped to any core of ``cluster``."""
        tasks: List[Task] = []
        for core in cluster.cores:
            tasks.extend(self._tasks_on[core.core_id])
        return tasks

    def all_tasks(self) -> List[Task]:
        return list(self._core_of.keys())

    def is_placed(self, task: Task) -> bool:
        return task in self._core_of

    # -- priority sums (paper's R_c, R_v, R) ----------------------------------------
    def priority_sum_core(self, core: Core) -> int:
        return sum(t.priority for t in self._tasks_on[core.core_id])

    def priority_sum_cluster(self, cluster: Cluster) -> int:
        return sum(self.priority_sum_core(core) for core in cluster.cores)

    def priority_sum_chip(self) -> int:
        return sum(t.priority for t in self._core_of)

    # -- mutation -----------------------------------------------------------------
    def place(self, task: Task, core: Core) -> None:
        """Place or move ``task`` onto ``core`` (no cost accounting)."""
        self.remove(task)
        self._core_of[task] = core.core_id
        self._tasks_on[core.core_id].append(task)

    def remove(self, task: Task) -> None:
        core_id = self._core_of.pop(task, None)
        if core_id is not None:
            self._tasks_on[core_id].remove(task)

    def empty_clusters(self) -> List[Cluster]:
        """Clusters with no mapped tasks (candidates for power gating)."""
        return [c for c in self._chip.clusters if not self.tasks_on_cluster(c)]

    def least_loaded_core(
        self, cores: Iterable[Core], t: float, exclude: Optional[Task] = None
    ) -> Core:
        """Core with the smallest summed true demand -- default placement."""
        candidates = list(cores)
        if not candidates:
            raise ValueError("no candidate cores")

        def load(core: Core) -> float:
            return sum(
                task.true_demand_pus(core.cluster.core_type, t)
                for task in self._tasks_on[core.core_id]
                if task is not exclude
            )

        return min(candidates, key=load)
