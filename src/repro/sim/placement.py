"""Task-to-core placement state (the mapping ``M`` of the paper).

Pure bookkeeping: which task currently lives on which core, with the
cluster-level views the agents need (``T_c``, ``T_v``, priority sums
``R_c``/``R_v``/``R``).  Mutation goes through the simulator's migration
manager so costs are charged consistently.

The mapping is held as an *incremental index*: per-core task lists plus
per-cluster task counts, both updated in O(1) on every place/remove, so
the engine's per-tick queries (dispatch, power gating, default placement)
never rescan the whole task population.  ``rebuild_index`` reconstructs
the derived structures from the authoritative task->core map; the
property tests assert the incremental index always matches that rebuild.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..hw.topology import Chip, Cluster, Core
from ..tasks.task import Task


class Placement:
    """Bidirectional task <-> core mapping over one chip."""

    def __init__(self, chip: Chip):
        self._chip = chip
        #: Monotonic mutation counter: bumped by every :meth:`place` /
        #: :meth:`remove`, so callers holding derived structures (the
        #: columnar engine's struct-of-arrays epoch) can detect staleness
        #: with one integer compare instead of rescanning the mapping.
        self.version: int = 0
        self._core_of: Dict[Task, str] = {}
        self._tasks_on: Dict[str, List[Task]] = {core.core_id: [] for core in chip.cores}
        self._cluster_of_core: Dict[str, str] = {
            core.core_id: core.cluster.cluster_id for core in chip.cores
        }
        self._cluster_count: Dict[str, int] = {
            cluster.cluster_id: 0 for cluster in chip.clusters
        }

    @property
    def chip(self) -> Chip:
        return self._chip

    # -- queries ------------------------------------------------------------------
    def core_of(self, task: Task) -> Optional[Core]:
        """The core ``task`` is mapped to, or ``None`` if unplaced."""
        core_id = self._core_of.get(task)
        return self._chip.core(core_id) if core_id is not None else None

    def cluster_of(self, task: Task) -> Optional[Cluster]:
        core = self.core_of(task)
        return core.cluster if core is not None else None

    def tasks_on_core(self, core: Core) -> List[Task]:
        """``T_c``: tasks mapped to ``core`` (insertion order)."""
        return list(self._tasks_on[core.core_id])

    def iter_tasks_on_core(self, core: Core) -> List[Task]:
        """The internal ``T_c`` list, *not* copied.

        Hot-path accessor for the engine's dispatch loop; callers must
        not mutate the returned list (use :meth:`place`/:meth:`remove`).
        """
        return self._tasks_on[core.core_id]

    def tasks_on_cluster(self, cluster: Cluster) -> List[Task]:
        """``T_v``: tasks mapped to any core of ``cluster``."""
        tasks: List[Task] = []
        for core in cluster.cores:
            tasks.extend(self._tasks_on[core.core_id])
        return tasks

    def cluster_task_count(self, cluster: Cluster) -> int:
        """Number of tasks mapped to ``cluster`` (O(1), incremental)."""
        return self._cluster_count[cluster.cluster_id]

    def has_tasks(self, cluster: Cluster) -> bool:
        """Whether any task is mapped to ``cluster`` (O(1))."""
        return self._cluster_count[cluster.cluster_id] > 0

    def all_tasks(self) -> List[Task]:
        return list(self._core_of.keys())

    def placed_count(self) -> int:
        return len(self._core_of)

    def is_placed(self, task: Task) -> bool:
        return task in self._core_of

    # -- priority sums (paper's R_c, R_v, R) ----------------------------------------
    def priority_sum_core(self, core: Core) -> int:
        return sum(t.priority for t in self._tasks_on[core.core_id])

    def priority_sum_cluster(self, cluster: Cluster) -> int:
        return sum(self.priority_sum_core(core) for core in cluster.cores)

    def priority_sum_chip(self) -> int:
        return sum(t.priority for t in self._core_of)

    # -- mutation -----------------------------------------------------------------
    def place(self, task: Task, core: Core) -> None:
        """Place or move ``task`` onto ``core`` (no cost accounting)."""
        self.remove(task)
        self._core_of[task] = core.core_id
        self._tasks_on[core.core_id].append(task)
        self._cluster_count[self._cluster_of_core[core.core_id]] += 1
        self.version += 1

    def remove(self, task: Task) -> None:
        core_id = self._core_of.pop(task, None)
        if core_id is not None:
            self._tasks_on[core_id].remove(task)
            self._cluster_count[self._cluster_of_core[core_id]] -= 1
            self.version += 1

    def empty_clusters(self) -> List[Cluster]:
        """Clusters with no mapped tasks (candidates for power gating)."""
        return [
            c for c in self._chip.clusters if self._cluster_count[c.cluster_id] == 0
        ]

    def least_loaded_core(
        self,
        cores: Iterable[Core],
        t: float,
        exclude: Optional[Task] = None,
        cache: Optional[Dict[str, float]] = None,
    ) -> Core:
        """Core with the smallest summed true demand -- default placement.

        ``cache`` (core_id -> load sum) memoizes loads across a batch of
        placements at one instant ``t``; the caller must add each newly
        placed task's demand to its core's entry (or evict the entry).
        An incremental update is bit-identical to recomputing -- the
        fresh sum is the same left-to-right fold extended by one term --
        so batch placement of N tasks drops from O(N^2) demand
        evaluations to O(N) without moving a single placement decision.
        """
        candidates = list(cores)
        if not candidates:
            raise ValueError("no candidate cores")

        def load(core: Core) -> float:
            return sum(
                task.true_demand_pus(core.cluster.core_type, t)
                for task in self._tasks_on[core.core_id]
                if task is not exclude
            )

        if cache is None:
            return min(candidates, key=load)

        def cached_load(core: Core) -> float:
            value = cache.get(core.core_id)
            if value is None:
                value = load(core)
                cache[core.core_id] = value
            return value

        return min(candidates, key=cached_load)

    # -- index integrity ----------------------------------------------------------
    def rebuild_index(self) -> Tuple[Dict[str, List[Task]], Dict[str, int]]:
        """Recompute the derived index from the task->core map alone.

        Returns ``(tasks_on, cluster_count)`` in the same shapes the
        incremental structures use.  Per-core order is the task-insertion
        order of ``_core_of`` filtered by core, which is exactly what the
        incremental lists maintain (append on place, remove on unplace).
        """
        tasks_on: Dict[str, List[Task]] = {
            core.core_id: [] for core in self._chip.cores
        }
        cluster_count: Dict[str, int] = {
            cluster.cluster_id: 0 for cluster in self._chip.clusters
        }
        for task, core_id in self._core_of.items():
            tasks_on[core_id].append(task)
            cluster_count[self._cluster_of_core[core_id]] += 1
        return tasks_on, cluster_count

    def index_consistent(self) -> bool:
        """Whether the incremental index matches a from-scratch rebuild.

        Strict: per-core lists must match element-for-element.  ``place``
        moves the task to the end of both the authoritative map and its
        core's list, so the orders coincide exactly.
        """
        tasks_on, cluster_count = self.rebuild_index()
        if cluster_count != self._cluster_count:
            return False
        for core_id, expected in tasks_on.items():
            actual = self._tasks_on[core_id]
            if len(actual) != len(expected) or any(
                a is not b for a, b in zip(actual, expected)
            ):
                return False
        return True
