"""Columnar (struct-of-arrays) tick engine.

:class:`ColumnarSimulation` re-implements the engine's per-tick hot loop
-- dispatch, load tracking, heart-rate monitoring, metrics capture -- as
vectorized passes over struct-of-arrays numpy buffers; the ``Task``
object graph becomes a lazily-materialised *view* of those buffers,
refreshed at observation boundaries.  Selected via
``SimConfig(engine="columnar")`` (the default); ``engine="object"``
forces the reference loop.

Design invariants (enforced by ``tests/sim/test_columnar_equivalence.py``
and ``tests/sim/test_sync_barrier.py``):

* **Bit-identical telemetry.**  Every vectorized expression maps 1:1 onto
  the scalar expression it replaces -- same operand order, same
  association, in-order ``np.bincount`` folds for every scalar ``+=``
  accumulation -- so per-tick metrics, checkpoints and golden digests are
  byte-identical to the object engine on any task count.
* **Columns are authoritative; objects are a view.**  The per-task hot
  attributes (``total_beats``, ``total_work_pu_s``, ``last_supply_pus``,
  ``last_consumed_pus``, ``last_demand_pus``) and the load-tracker dict
  are materialised from the arrays by the :meth:`ColumnarSimulation.sync`
  barrier, invoked by every observation hook site: governor decision
  paths that fall back to attribute reads, telemetry/metrics fallbacks,
  fault-injection window activation, checkpoint snapshots, audit passes
  and the end of :meth:`Simulation.run`.  Per-column dirty epochs (tick
  stamps) make the barrier a no-op when nothing changed.  The floats a
  barrier materialises are exactly the floats per-tick write-through
  would have produced, so observers cannot distinguish the modes.
  ``REPRO_COLUMNAR_SYNC`` selects the policy: ``lazy`` (default),
  ``eager`` (write-through every tick, the pre-barrier behaviour) or
  ``poison`` (lazy, plus a debug sentinel written to the view attributes
  between barriers so an unsynchronised read raises
  :class:`PoisonedStateError` instead of returning a stale float).
  Out-of-band *mutators* of hot attributes must still call
  :meth:`Simulation.invalidate_task_cache` afterwards (which itself
  syncs first), exactly as before.
* **Epoch caching.**  Per-task constant arrays (start/end times, QoS
  bounds, per-beat costs, phase parameters) are rebuilt only when the
  placement mapping changes (:attr:`Placement.version`), the task set is
  invalidated, or ``dt`` changes.  Rebuilds re-seed the columns from the
  object view, so a barrier always precedes them.

Tasks whose ``hrm`` has been instrumented (e.g. the fault injector's
heartbeat-withholding wrapper) keep their scalar monitor and are advanced
through the ordinary per-object calls; everything else is adopted into a
shared ring buffer (:class:`_HRMRings`) with :class:`ColumnarHRM` views
preserving the ``HeartRateMonitor`` API.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly via AVAILABLE
    import numpy as np

    AVAILABLE = True
except ImportError:  # pragma: no cover - toolchain bakes numpy in
    np = None  # type: ignore[assignment]
    AVAILABLE = False

from ..tasks.heartbeats import HeartRateMonitor
from ..tasks.phases import ConstantPhase, SinusoidalPhases, SquareWavePhases
from ..tasks.task import Task
from .engine import Simulation, default_sync_mode
from .metrics import MetricsCollector, TaskSample, TickColumnBuffer, TickSample


class PoisonedStateError(RuntimeError):
    """An object attribute was read between sync barriers (poison mode).

    Raised when ``REPRO_COLUMNAR_SYNC=poison`` and code consumes a
    ``Task`` hot attribute without an intervening
    :meth:`ColumnarSimulation.sync`; the fix is a ``sim.sync()`` call at
    the offending observation site, never a re-pin of expected values.
    """


class _Poison:
    """Debug sentinel stored in view attributes between barriers.

    Any numeric use (arithmetic, comparison, conversion, formatting)
    raises :class:`PoisonedStateError` naming the poisoned attribute;
    plain ``repr`` stays usable so debuggers can display the object.
    """

    __slots__ = ("_attr",)

    def __init__(self, attr: str) -> None:
        self._attr = attr

    def __repr__(self) -> str:  # pragma: no cover - debugger aid
        return f"<poisoned {self._attr}>"

    def _trap(self, *_args, **_kwargs):
        raise PoisonedStateError(
            f"unsynchronised read of Task.{self._attr}: the columnar engine "
            "is in poison mode and no sync() barrier ran since the last "
            "tick; call sim.sync() at the observation site"
        )

    __float__ = __int__ = __bool__ = __index__ = _trap
    __add__ = __radd__ = __sub__ = __rsub__ = _trap
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _trap
    __floordiv__ = __rfloordiv__ = __mod__ = __rmod__ = __pow__ = _trap
    __neg__ = __pos__ = __abs__ = __round__ = _trap
    __lt__ = __le__ = __gt__ = __ge__ = __eq__ = __ne__ = _trap
    __hash__ = None  # type: ignore[assignment]
    __format__ = __str__ = _trap  # type: ignore[assignment]


#: One sentinel per hot attribute, shared across all tasks (the trap
#: message is per-attribute; no per-task state is needed).
_POISONS = tuple(
    _Poison(attr)
    for attr in (
        "total_beats",
        "total_work_pu_s",
        "last_supply_pus",
        "last_consumed_pus",
        "last_demand_pus",
    )
)


class _HRMRings:
    """Ring buffers holding the adopted tasks' heart-rate samples.

    One row per store row (rows that keep a scalar monitor simply leave
    their ring row unused).  Semantics mirror ``HeartRateMonitor``'s
    deque exactly: append the cumulative beat count, then pop from the
    left while the *second* sample is at/before the window horizon.
    """

    def __init__(
        self,
        windows: Sequence[float],
        samples: Sequence[Sequence[Tuple[float, float]]],
        dt: float,
    ):
        n = len(windows)
        cap = 4
        for w, s in zip(windows, samples):
            cap = max(cap, int(math.ceil(w / dt)) + 4, len(s) + 2)
        self.n = n
        self.cap = cap
        self.window = np.asarray(windows, dtype=float)
        self.t = np.zeros((n, cap))
        self.b = np.zeros((n, cap))
        self.head = np.zeros(n, dtype=np.intp)
        self.count = np.zeros(n, dtype=np.intp)
        self._rows = np.arange(n, dtype=np.intp)
        #: Mutation counter; heart-rate caches key off it.
        self.stamp = 0
        for i, s in enumerate(samples):
            k = len(s)
            if k:
                self.t[i, :k] = [pair[0] for pair in s]
                self.b[i, :k] = [pair[1] for pair in s]
            self.count[i] = k
        # Uniform mode: when every row shares one window and one sample
        # cadence (the steady state -- every task records every tick),
        # the time ring, head and count are shared scalars and appends
        # collapse to one column write.  Any per-row mutation demotes to
        # the general per-row machinery, copying the shared state out.
        self._detect_uniform()

    @classmethod
    def adopt(
        cls,
        windows: Sequence[float],
        samples: Sequence[Sequence[Tuple[float, float]]],
        col_src: Sequence[Tuple[int, "_HRMRings", int]],
        dt: float,
    ) -> "_HRMRings":
        """Build rings re-adopting rows straight out of existing rings.

        Equivalent to materialising every ``col_src`` row via
        ``samples_of`` and running ``__init__``, but the sample transfer
        is one array gather per source ring instead of a per-task deque
        round-trip.  ``samples`` carries the scalar-monitor rows only;
        rows named in ``col_src`` keep their placeholder ``windows``
        entry (overwritten from the source ring) and must have an empty
        ``samples`` entry.
        """
        self = cls.__new__(cls)
        n = len(windows)
        groups: Dict[int, list] = {}
        for row, ring, src in col_src:
            g = groups.get(id(ring))
            if g is None:
                g = groups[id(ring)] = [ring, [], []]
            g[1].append(row)
            g[2].append(src)
        window = np.asarray(windows, dtype=float)
        grp = []
        for ring, rows, srcs in groups.values():
            nr = np.asarray(rows, dtype=np.intp)
            orr = np.asarray(srcs, dtype=np.intp)
            grp.append((ring, nr, orr))
            window[nr] = ring.window[orr]
        # ``ceil`` is monotone, so the per-row max of ``ceil(w/dt)``
        # equals ``ceil(max(w)/dt)``.
        cap = 4
        if n:
            cap = max(cap, int(math.ceil(float(window.max()) / dt)) + 4)
        for s in samples:
            if s:
                cap = max(cap, len(s) + 2)
        for ring, nr, orr in grp:
            if ring.uniform:
                cmax = int(ring.ucount)
            else:
                cmax = int(ring.count[orr].max())
            cap = max(cap, cmax + 2)
        self.n = n
        self.cap = cap
        self.window = window
        self.t = np.zeros((n, cap))
        self.b = np.zeros((n, cap))
        self.head = np.zeros(n, dtype=np.intp)
        self.count = np.zeros(n, dtype=np.intp)
        self._rows = np.arange(n, dtype=np.intp)
        self.stamp = 0
        for i, s in enumerate(samples):
            k = len(s)
            if k:
                self.t[i, :k] = [pair[0] for pair in s]
                self.b[i, :k] = [pair[1] for pair in s]
                self.count[i] = k
        for ring, nr, orr in grp:
            if ring.uniform:
                k = int(ring.ucount)
                if k:
                    idx = (ring.uhead + np.arange(k)) % ring.cap
                    self.t[nr[:, None], np.arange(k)[None, :]] = ring.ut[idx][None, :]
                    self.b[nr[:, None], np.arange(k)[None, :]] = ring.b[
                        orr[:, None], idx[None, :]
                    ]
                self.count[nr] = k
            else:
                cnts = ring.count[orr]
                kmax = int(cnts.max())
                if kmax:
                    seq = np.arange(kmax)
                    idx = (ring.head[orr][:, None] + seq[None, :]) % ring.cap
                    mask = seq[None, :] < cnts[:, None]
                    self.t[nr[:, None], seq[None, :]] = np.where(
                        mask, ring.t[orr[:, None], idx], 0.0
                    )
                    self.b[nr[:, None], seq[None, :]] = np.where(
                        mask, ring.b[orr[:, None], idx], 0.0
                    )
                self.count[nr] = cnts
        self._detect_uniform()
        return self

    def _detect_uniform(self) -> None:
        """Enter uniform mode when every row shares window and cadence.

        Callers must have every row normalised to ``head == 0`` (both
        construction paths write samples from slot 0).
        """
        self.uniform = False
        self.ut = None
        self.uhead = 0
        self.ucount = 0
        n = self.n
        cap = self.cap
        if n:
            k0 = int(self.count[0])
            same = bool((self.count == k0).all()) and bool(
                (self.window == self.window[0]).all()
            )
            if same and (k0 == 0 or bool((self.t[:, :k0] == self.t[0, :k0]).all())):
                self.uniform = True
                self.ut = np.zeros(cap)
                if k0:
                    self.ut[:k0] = self.t[0, :k0]
                self.ucount = k0

    def _demote(self) -> None:
        """Materialise the shared uniform state into the per-row arrays."""
        if not self.uniform:
            return
        self.uniform = False
        self.t[:, :] = self.ut[None, :]
        self.head[:] = self.uhead
        self.count[:] = self.ucount

    def append_all(self, t_new: float, beats: "np.ndarray") -> None:
        """Uniform-mode ``record`` for every row at once (one column write)."""
        self.stamp += 1
        if self.ucount + 1 > self.cap:
            self._grow(self.ucount + 2)
        cap = self.cap
        pos = (self.uhead + self.ucount) % cap
        ut = self.ut
        ut[pos] = t_new
        self.b[:, pos] = beats
        self.ucount += 1
        horizon = t_new - float(self.window[0])
        while self.ucount >= 2 and ut[(self.uhead + 1) % cap] <= horizon:
            self.uhead = (self.uhead + 1) % cap
            self.ucount -= 1

    def _grow(self, need: int) -> None:
        cap = max(need, 2 * self.cap)
        t = np.zeros((self.n, cap))
        b = np.zeros((self.n, cap))
        if self.uniform:
            c = self.ucount
            if c:
                idx = (self.uhead + np.arange(c)) % self.cap
                b[:, :c] = self.b[:, idx]
                ut = np.zeros(cap)
                ut[:c] = self.ut[idx]
                self.ut = ut
                t[:, :c] = ut[:c][None, :]
            else:
                self.ut = np.zeros(cap)
            self.uhead = 0
            self.count[:] = c
        else:
            for i in range(self.n):
                c = int(self.count[i])
                if c:
                    idx = (int(self.head[i]) + np.arange(c)) % self.cap
                    t[i, :c] = self.t[i, idx]
                    b[i, :c] = self.b[i, idx]
        self.t = t
        self.b = b
        self.head[:] = 0
        self.cap = cap

    def append_many(self, rows: "np.ndarray", t_new: float, beats: "np.ndarray") -> None:
        """Vectorized ``record(t_new, beats[k])`` over ``rows``.

        The engine only appends monotonically increasing times, so the
        scalar path's non-decreasing check is statically satisfied here.
        """
        if rows.size == 0:
            return
        if self.uniform:
            if rows.size == self.n:
                self.append_all(t_new, beats)
                return
            self._demote()
        self.stamp += 1
        if int(self.count[rows].max()) + 1 > self.cap:
            self._grow(int(self.count[rows].max()) + 2)
        head = self.head
        count = self.count
        pos = (head[rows] + count[rows]) % self.cap
        self.t[rows, pos] = t_new
        self.b[rows, pos] = beats
        count[rows] += 1
        # Trim: same pop-while-second-sample-expired loop as the deque,
        # advanced for every row at once (regular cadence pops <= 1-2).
        h = head[rows].copy()
        c = count[rows].copy()
        horizon = t_new - self.window[rows]
        while True:
            live = c >= 2
            if not live.any():
                break
            second = self.t[rows, (h + 1) % self.cap]
            live &= second <= horizon
            if not live.any():
                break
            h[live] = (h[live] + 1) % self.cap
            c[live] -= 1
        head[rows] = h
        count[rows] = c

    def append_one(self, i: int, t: float, total_beats: float) -> None:
        """Scalar ``HeartRateMonitor.record`` against ring row ``i``."""
        self._demote()
        self.stamp += 1
        if int(self.count[i]) + 1 > self.cap:
            self._grow(int(self.count[i]) + 2)
        h = int(self.head[i])
        c = int(self.count[i])
        if c and t < self.t[i, (h + c - 1) % self.cap]:
            raise ValueError("time must be non-decreasing")
        self.t[i, (h + c) % self.cap] = t
        self.b[i, (h + c) % self.cap] = total_beats
        c += 1
        horizon = t - float(self.window[i])
        while c >= 2 and self.t[i, (h + 1) % self.cap] <= horizon:
            h = (h + 1) % self.cap
            c -= 1
        self.head[i] = h
        self.count[i] = c

    def rate_all(self) -> "np.ndarray":
        """``HeartRateMonitor.heart_rate`` for every row (vectorized)."""
        if self.uniform:
            c = self.ucount
            if c < 2:
                return np.zeros(self.n)
            h = self.uhead
            last = (h + c - 1) % self.cap
            t0 = float(self.ut[h])
            t1 = float(self.ut[last])
            if t1 <= t0:
                return np.zeros(self.n)
            return (self.b[:, last] - self.b[:, h]) / (t1 - t0)
        rows = self._rows
        last = (self.head + self.count - 1) % self.cap
        t0 = self.t[rows, self.head]
        t1 = self.t[rows, last]
        ok = (self.count >= 2) & (t1 > t0)
        b0 = self.b[rows, self.head]
        b1 = self.b[rows, last]
        return np.where(ok, (b1 - b0) / np.where(ok, t1 - t0, 1.0), 0.0)

    def rate_one(self, i: int) -> float:
        c = self.ucount if self.uniform else int(self.count[i])
        if c < 2:
            return 0.0
        h = self.uhead if self.uniform else int(self.head[i])
        last = (h + c - 1) % self.cap
        tbuf = self.ut if self.uniform else self.t[i]
        t0 = tbuf[h]
        t1 = tbuf[last]
        if t1 <= t0:
            return 0.0
        return float((self.b[i, last] - self.b[i, h]) / (t1 - t0))

    def reset_one(self, i: int) -> None:
        self._demote()
        self.stamp += 1
        self.count[i] = 0

    def samples_of(self, i: int) -> deque:
        if self.uniform:
            c = self.ucount
            idx = (self.uhead + np.arange(c)) % self.cap
            return deque(zip(self.ut[idx].tolist(), self.b[i, idx].tolist()))
        c = int(self.count[i])
        idx = (int(self.head[i]) + np.arange(c)) % self.cap
        return deque(zip(self.t[i, idx].tolist(), self.b[i, idx].tolist()))

    def set_samples(self, i: int, pairs) -> None:
        pairs = list(pairs)
        self._demote()
        self.stamp += 1
        if len(pairs) + 2 > self.cap:
            self._grow(len(pairs) + 2)
        self.head[i] = 0
        self.count[i] = len(pairs)
        for k, (tv, bv) in enumerate(pairs):
            self.t[i, k] = tv
            self.b[i, k] = bv


class ColumnarHRM:
    """Drop-in ``HeartRateMonitor`` view over one ring-buffer row.

    Standalone handle: it stays valid (reads and writes its birth ring)
    even after the owning epoch is discarded; a rebuilt epoch simply
    materialises its samples into the new rings and hands the task a
    fresh view.
    """

    def __init__(self, rings: _HRMRings, row: int):
        self._rings = rings
        self._row = row

    @property
    def window_s(self) -> float:
        return float(self._rings.window[self._row])

    def record(self, t: float, total_beats: float) -> None:
        self._rings.append_one(self._row, t, total_beats)

    def heart_rate(self) -> float:
        return self._rings.rate_one(self._row)

    def reset(self) -> None:
        self._rings.reset_one(self._row)

    @property
    def _samples(self) -> deque:
        return self._rings.samples_of(self._row)

    @_samples.setter
    def _samples(self, value) -> None:
        self._rings.set_samples(self._row, value)


class _Epoch:
    """Struct-of-arrays snapshot of the placed task population.

    Valid while ``placement.version`` and ``dt`` are unchanged; the
    mutable state columns are kept in sync with the task attributes by
    the engine's per-tick write-back, so discarding an epoch loses
    nothing.
    """

    __slots__ = (
        "version",
        "dt",
        "n",
        "tasks",
        "rowmap",
        "cores",
        "ncores",
        "core_ix",
        "core_bounds",
        "clusters",
        "cluster_ix",
        "start",
        "end",
        "tgt_hr",
        "cost_base",
        "any_limit",
        "has_limit",
        "limit",
        "lo",
        "hi",
        "beats",
        "work",
        "sup",
        "con",
        "dem",
        "load",
        "has_load",
        "rings",
        "vec_rows",
        "py_rows",
        "py_set",
        "ph_const_rows",
        "ph_const_vals",
        "ph_sin_rows",
        "ph_sin_start",
        "ph_sin_amp",
        "ph_sin_per",
        "ph_sin_off",
        "ph_sqw_rows",
        "ph_sqw_start",
        "ph_sqw_per",
        "ph_sqw_lo",
        "ph_sqw_hi",
        "ph_sqw_duty",
        "ph_sqw_off",
        "ph_py",
        "all_const",
        "const_buf",
        "mult_buf",
        "covers_all",
        "perm",
        "perm_names",
        "perm_identity",
        "perm_lo",
        "perm_hi",
        "alloc_has",
        "alloc_val",
        "weight_val",
        "alloc_all",
        "alloc_none",
        "max_start",
        "min_end",
        "fz_max",
        "core_counts",
        "cost_const",
        "dem_const",
        "all_vec",
        "all_has_load",
        "g_key",
        "g_sup_core",
        "g_grants",
        "g_cons",
        "g_beats_inc",
        "g_work_inc",
        "g_util",
        "g_inst",
        "g_load_c",
    )

    def core_supplies(self) -> "np.ndarray":
        """Per-core supply this tick (uniform within a cluster)."""
        per_cluster = np.fromiter(
            (cl.supply_pus for cl in self.clusters), dtype=float, count=len(self.clusters)
        )
        return per_cluster[self.cluster_ix]

    def multipliers(self, now: float) -> "np.ndarray":
        """Per-row phase multiplier at ``now`` (same expressions as scalar)."""
        if self.all_const:
            return self.const_buf
        m = self.mult_buf
        if self.ph_const_rows is not None:
            m[self.ph_const_rows] = self.ph_const_vals
        if self.ph_sin_rows is not None:
            lt = now - self.ph_sin_start
            lt = np.where(lt > 0.0, lt, 0.0)
            m[self.ph_sin_rows] = 1.0 + self.ph_sin_amp * np.sin(
                2.0 * np.pi * (lt + self.ph_sin_off) / self.ph_sin_per
            )
        if self.ph_sqw_rows is not None:
            lt = now - self.ph_sqw_start
            lt = np.where(lt > 0.0, lt, 0.0)
            pos = np.fmod(lt + self.ph_sqw_off, self.ph_sqw_per) / self.ph_sqw_per
            pos = np.where(pos < 0.0, pos + 1.0, pos)
            m[self.ph_sqw_rows] = np.where(pos < self.ph_sqw_duty, self.ph_sqw_hi, self.ph_sqw_lo)
        for row, task in self.ph_py:
            m[row] = task.phase_multiplier(now)
        return m

    def refresh_grant_inputs(self, allocations: Dict[Task, float], weights: Dict[Task, float]) -> None:
        n = self.n
        self.alloc_has = np.fromiter(
            (t in allocations for t in self.tasks), dtype=bool, count=n
        )
        self.alloc_val = np.fromiter(
            (allocations.get(t, 0.0) for t in self.tasks), dtype=float, count=n
        )
        self.weight_val = np.fromiter(
            (weights.get(t, 1.0) for t in self.tasks), dtype=float, count=n
        )
        self.alloc_all = bool(self.alloc_has.all())
        self.alloc_none = not self.alloc_all and not bool(self.alloc_has.any())
        self.g_key = None

    def ordered_rows(self, runnable: "np.ndarray", frozen: "np.ndarray") -> List[int]:
        """Store rows in scalar dispatch-update order.

        The object engine updates the load dict runnable-first then
        frozen *per core*; dict insertion order is observable through
        checkpoint snapshots, so mirror it exactly.
        """
        out: List[int] = []
        for s, e in self.core_bounds:
            for i in range(s, e):
                if runnable[i]:
                    out.append(i)
            for i in range(s, e):
                if frozen[i]:
                    out.append(i)
        return out


class ColumnarMetrics(MetricsCollector):
    """Metrics collector with vectorized recording and deferred samples.

    ``record`` slices one tick's per-task columns straight into
    preallocated :class:`~repro.sim.metrics.TickColumnBuffer` segments
    (one segment per contiguous task roster); the ``samples`` property
    materialises real :class:`TickSample` objects on first read, so every
    consumer (summary metrics, snapshots, journals, tests) sees the
    ordinary object API with identical floats.
    """

    def __init__(self, warmup_s: float = 2.0, sim: Optional["ColumnarSimulation"] = None):
        self._segments: List[TickColumnBuffer] = []
        self._samples_list: List[TickSample] = []
        self._sim = sim
        super().__init__(warmup_s=warmup_s)

    @property  # type: ignore[override]
    def samples(self) -> List[TickSample]:
        segments = self._segments
        if segments:
            out = self._samples_list
            for buf in segments:
                buf.materialise(out)
            segments.clear()
        return self._samples_list

    @samples.setter
    def samples(self, value) -> None:
        self._segments = []
        self._samples_list = list(value)

    def record(
        self,
        time_s: float,
        chip_power_w: float,
        cluster_power_w: Dict[str, float],
        cluster_frequency_mhz: Dict[str, float],
        tasks: Sequence[Task],
        cluster_temperature_c: Optional[Dict[str, float]] = None,
        estimated_chip_power_w: Optional[float] = None,
    ) -> None:
        sim = self._sim
        rowdata = sim._metrics_arrays(tasks) if sim is not None else None
        if rowdata is None:
            # Python fallback reads Task attributes: acquire the barrier,
            # and materialise deferred segments first so rows stay in
            # tick order (super() appends via the samples property).
            if sim is not None:
                sim.sync()
            super().record(
                time_s,
                chip_power_w,
                cluster_power_w,
                cluster_frequency_mhz,
                tasks,
                cluster_temperature_c,
                estimated_chip_power_w,
            )
            return
        names, hr, below, outside, sup, con = rowdata
        segments = self._segments
        if segments and (
            segments[-1].names is names or segments[-1].names == names
        ):
            buf = segments[-1]
        else:
            buf = TickColumnBuffer(names)
            segments.append(buf)
        buf.append(
            time_s,
            chip_power_w,
            hr,
            below,
            outside,
            sup,
            con,
            (
                dict(cluster_power_w),
                dict(cluster_frequency_mhz),
                None if cluster_temperature_c is None else dict(cluster_temperature_c),
                estimated_chip_power_w,
            ),
        )

    def energy_per_beat_mj(self, tasks: Sequence[Task], dt: float) -> float:
        # Reads Task.total_beats: a mid-run caller needs the barrier.
        if self._sim is not None:
            self._sim.sync()
        return super().energy_per_beat_mj(tasks, dt)


class ColumnarSimulation(Simulation):
    """Simulation with the struct-of-arrays hot loop.

    Constructed transparently by ``Simulation(...)`` when
    ``SimConfig.engine == "columnar"`` and numpy is importable.
    """

    def __init__(self, chip, tasks, governor, config=None, migration_cost_model=None):
        super().__init__(
            chip, tasks, governor, config=config, migration_cost_model=migration_cost_model
        )
        self.metrics = ColumnarMetrics(warmup_s=self.config.metrics_warmup_s, sim=self)
        self._epoch: Optional[_Epoch] = None
        self._grant_inputs_dirty = True
        self._hr_cache: Optional["np.ndarray"] = None
        self._hr_stamp = -1
        # (tasks list object, epoch, row indices) for gather_demand_inputs;
        # callers reuse the same list while the market membership is
        # stable, so the rowmap walk happens once per (membership, epoch).
        self._gather_cache: Optional[tuple] = None
        # (starts, ends, max_start, all_unbounded) for the vector
        # active-task scan; rebuilt on invalidate_task_cache.
        self._task_window: Optional[tuple] = None
        #: Write-through policy: "lazy" | "eager" | "poison".  Read every
        #: tick, so tests may flip it between steps; the value changes
        #: when barriers run, never what they materialise.
        self.sync_mode: str = default_sync_mode()
        #: Barriers that actually flushed state (observability for tests
        #: and the lazy-vs-eager benchmark column).
        self.sync_count: int = 0
        # Per-column dirty epochs: tick stamp of the last unflushed column
        # write vs. the stamp the object view was last materialised at.
        cols = ("beats", "work", "sup", "con", "dem", "load")
        self._col_dirty: Dict[str, int] = {c: 0 for c in cols}
        self._col_synced: Dict[str, int] = {c: 0 for c in cols}
        self._view_dirty = False  # fast no-op check for sync()
        self._poisoned = False

    # -- cache invalidation -------------------------------------------------------
    def invalidate_task_cache(self) -> None:
        # Out-of-band task mutation follows: materialise the view first so
        # the mutation lands on current floats and the epoch rebuild
        # re-seeds its columns from a consistent object graph.
        self.sync()
        super().invalidate_task_cache()
        self._epoch = None
        self._grant_inputs_dirty = True
        self._hr_cache = None
        self._hr_stamp = -1
        self._task_window = None
        self._gather_cache = None

    # -- the observation barrier --------------------------------------------------
    def sync(self) -> None:
        """Materialise the object view of the authoritative columns.

        Flushes every column whose dirty epoch is ahead of its synced
        epoch back to ``Task`` attributes (and the load-tracker dict),
        then clears any poison sentinels.  A no-op when nothing changed
        since the last barrier, so hook sites call it unconditionally.
        Load-tracker values are written in place for keys already
        present only: retirement's ``forget`` must not be undone by a
        later barrier.
        """
        if not self._view_dirty:
            return
        ep = self._epoch
        if ep is not None and ep.n:
            dirty = self._col_dirty
            synced = self._col_synced
            poisoned = self._poisoned
            tasks = ep.tasks
            if poisoned or dirty["beats"] > synced["beats"]:
                bl = ep.beats.tolist()
                wl = ep.work.tolist()
                for t, tb, tw in zip(tasks, bl, wl):
                    t.total_beats = tb
                    t.total_work_pu_s = tw
                synced["beats"] = dirty["beats"]
                synced["work"] = dirty["work"]
            if poisoned or dirty["sup"] > synced["sup"]:
                sl = ep.sup.tolist()
                cl = ep.con.tolist()
                dl = ep.dem.tolist()
                for t, ts, tc, td in zip(tasks, sl, cl, dl):
                    t.last_supply_pus = ts
                    t.last_consumed_pus = tc
                    t.last_demand_pus = td
                synced["sup"] = dirty["sup"]
                synced["con"] = dirty["con"]
                synced["dem"] = dirty["dem"]
            if dirty["load"] > synced["load"]:
                tracked = self.load_tracker._load
                for t, v in zip(tasks, ep.load.tolist()):
                    if t in tracked:
                        tracked[t] = v
                synced["load"] = dirty["load"]
        self._view_dirty = False
        self._poisoned = False
        self.sync_count += 1

    def set_allocation(self, task: Task, pus: float) -> None:
        self._grant_inputs_dirty = True
        super().set_allocation(task, pus)

    def set_allocations(self, pairs: Dict[Task, float]) -> None:
        self._grant_inputs_dirty = True
        super().set_allocations(pairs)

    def clear_allocation(self, task: Task) -> None:
        self._grant_inputs_dirty = True
        super().clear_allocation(task)

    def clear_allocations(self) -> None:
        self._grant_inputs_dirty = True
        super().clear_allocations()

    def set_weight(self, task: Task, weight: float) -> None:
        self._grant_inputs_dirty = True
        super().set_weight(task, weight)

    # -- fast-path engine queries -------------------------------------------------
    def _active_now(self) -> List[Task]:
        if self._active_cache_now != self.now:
            now = self.now
            win = self._task_window
            if win is None:
                tasks = self.tasks
                n = len(tasks)
                starts = np.fromiter((t.start_time for t in tasks), dtype=float, count=n)
                ends = np.fromiter(
                    (
                        t.start_time + t.duration if t.duration is not None else math.inf
                        for t in tasks
                    ),
                    dtype=float,
                    count=n,
                )
                max_start = float(starts.max()) if n else 0.0
                all_unbounded = bool(np.isinf(ends).all())
                win = self._task_window = (starts, ends, max_start, all_unbounded)
            starts, ends, max_start, all_unbounded = win
            if all_unbounded and now >= max_start:
                # Every task started and none ever ends: the population
                # itself is the active list (do not mutate).
                self._active_cache = self.tasks
            else:
                mask = (now >= starts) & (now < ends)
                if bool(mask.all()):
                    self._active_cache = self.tasks
                else:
                    tasks = self.tasks
                    self._active_cache = [tasks[i] for i in np.nonzero(mask)[0].tolist()]
            self._active_cache_now = now
        return self._active_cache

    def _ensure_placed(self) -> None:
        # Common tick: the whole population is active and placed, so no
        # active task can be waiting for placement.  (Comparing against
        # the *population* size, not the active count, keeps scenarios
        # with pre-placed future tasks on the exact scan.)
        if (
            self.placement.placed_count() == len(self.tasks)
            and self._active_now() is self.tasks
        ):
            return
        super()._ensure_placed()

    def _retire_inactive(self) -> None:
        if not self._any_finite_task:
            return
        ep = self._epoch
        if ep is not None and ep.version == self.placement.version and ep.n:
            now = self.now
            if bool(((now >= ep.start) & (now < ep.end)).all()):
                return  # nothing placed can retire this tick
        super()._retire_inactive()

    # -- columnar observability ---------------------------------------------------
    def _heart_rates(self) -> "np.ndarray":
        """Per-store-row heart rates, cached per ring mutation stamp."""
        ep = self._epoch
        rings = ep.rings
        if self._hr_cache is not None and self._hr_stamp == rings.stamp:
            return self._hr_cache
        hr = rings.rate_all()
        for i in ep.py_rows:
            hr[i] = ep.tasks[i].hrm.heart_rate()
        self._hr_cache = hr
        self._hr_stamp = rings.stamp
        return hr

    def gather_demand_inputs(self, tasks: Sequence[Task]):
        """(heart rates, last consumed, last supplied) for ``tasks``.

        Served straight from the columnar buffers; identical values to
        the per-task attribute reads thanks to the per-tick write-back.
        Returns ``None`` (caller falls back to attributes) when any task
        is outside the current epoch.
        """
        ep = self._epoch
        if ep is None:
            return None
        cache = self._gather_cache
        if cache is not None and cache[0] is tasks and cache[1] is ep:
            rows = cache[2]
            ridx = cache[3]
        else:
            rowmap = ep.rowmap
            rows = []
            for t in tasks:
                r = rowmap.get(t)
                if r is None:
                    return None
                rows.append(r)
            ridx = np.asarray(rows, dtype=np.intp)
            self._gather_cache = (tasks, ep, rows, ridx)
        hr = self._heart_rates()[ridx]
        if ep.py_rows:
            # Scalar-route monitors can mutate without bumping the ring
            # stamp (e.g. an injector wrapper): always read them live.
            py_set = ep.py_set
            for k, r in enumerate(rows):
                if r in py_set:
                    hr[k] = ep.tasks[r].hrm.heart_rate()
        return hr, ep.con[ridx], ep.sup[ridx]

    def _metrics_arrays(self, tasks: Sequence[Task]):
        """Columnar tick sample for ``tasks``; None -> python fallback.

        Returns numpy arrays; the caller (:class:`ColumnarMetrics`) slices
        them into its column buffers, which performs the copy -- ``sup``
        and ``con`` mutate in place across ticks, so no view of them may
        outlive this tick uncopied.
        """
        ep = self._epoch
        if ep is None:
            return None
        if tasks is self.tasks and ep.covers_all:
            if ep.perm_identity:
                hr = self._heart_rates()
                lo = ep.lo
                hi = ep.hi
                below = hr < lo
                outside = ~((lo <= hr) & (hr <= hi))
                return (ep.perm_names, hr, below, outside, ep.sup, ep.con)
            ridx = ep.perm
            names = ep.perm_names
            lo = ep.perm_lo
            hi = ep.perm_hi
        else:
            rowmap = ep.rowmap
            rows: List[int] = []
            for t in tasks:
                r = rowmap.get(t)
                if r is None:
                    return None
                rows.append(r)
            ridx = np.asarray(rows, dtype=np.intp)
            names = tuple(t.name for t in tasks)
            lo = ep.lo[ridx]
            hi = ep.hi[ridx]
        hr = self._heart_rates()[ridx]
        below = hr < lo
        outside = ~((lo <= hr) & (hr <= hi))
        return (names, hr, below, outside, ep.sup[ridx], ep.con[ridx])

    # -- epoch construction -------------------------------------------------------
    def _build_epoch(self) -> _Epoch:
        # The columns below are seeded from the object view; flush any
        # state the previous epoch still held (placement.version bumps
        # reach here without passing invalidate_task_cache).
        self.sync()
        placement = self.placement
        chip = self.chip
        dt = self.config.dt
        ep = _Epoch()
        ep.version = placement.version
        ep.dt = dt

        tasks: List[Task] = []
        core_ix: List[int] = []
        core_bounds: List[Tuple[int, int]] = []
        cores = []
        clusters = list(chip.clusters)
        cluster_index = {id(cl): j for j, cl in enumerate(clusters)}
        cluster_ix: List[int] = []
        for cluster in clusters:
            for core in cluster.cores:
                j = len(cores)
                cores.append(core)
                cluster_ix.append(cluster_index[id(cluster)])
                s = len(tasks)
                for t in placement.iter_tasks_on_core(core):
                    tasks.append(t)
                    core_ix.append(j)
                core_bounds.append((s, len(tasks)))
        n = len(tasks)
        ep.tasks = tasks
        ep.rowmap = {t: i for i, t in enumerate(tasks)}
        ep.cores = cores
        ep.ncores = len(cores)
        ep.core_ix = np.asarray(core_ix, dtype=np.intp)
        ep.core_bounds = core_bounds
        ep.clusters = clusters
        ep.cluster_ix = np.asarray(cluster_ix, dtype=np.intp)
        ep.n = n

        # Permutation fast path: when the previous epoch covers exactly
        # this population (the usual migration rebuild -- version bumps
        # reach here with the same tasks on different cores), every
        # task-invariant column is a row gather from the old epoch, and
        # the mutable columns were just flushed by the sync() above so
        # they equal the object attributes bit for bit.  Out-of-band
        # mutators go through invalidate_task_cache, which clears
        # ``_epoch`` and forces the slow seed-from-objects walk.
        old = self._epoch
        perm: Optional["np.ndarray"] = None
        if old is not None and old.n == n and n:
            try:
                perm = np.asarray([old.rowmap[t] for t in tasks], dtype=np.intp)
            except KeyError:
                perm = None

        if perm is not None:
            ep.start = old.start[perm]
            ep.end = old.end[perm]
        else:
            ep.start = np.fromiter(
                (t.start_time for t in tasks), dtype=float, count=n
            )
            ep.end = np.fromiter(
                (
                    t.start_time + t.duration if t.duration is not None else math.inf
                    for t in tasks
                ),
                dtype=float,
                count=n,
            )
        ep.max_start = float(ep.start.max()) if n else 0.0
        ep.min_end = float(ep.end.min()) if n else math.inf
        # ``frozen_until`` writers (migration, snapshot restore) always
        # invalidate the epoch, so the horizon is fixed for its lifetime.
        ep.fz_max = max((t.frozen_until for t in tasks), default=0.0)
        ep.core_counts = np.asarray([e - s for s, e in core_bounds], dtype=float)
        if perm is not None:
            ep.tgt_hr = old.tgt_hr[perm]
            ep.has_limit = old.has_limit[perm]
            ep.limit = old.limit[perm]
            ep.lo = old.lo[perm]
            ep.hi = old.hi[perm]
            # cost_pu_s_per_beat depends on the hosting core type only:
            # gather, then recompute just the rows whose type changed
            # (normally the one migrated task).
            ep.cost_base = old.cost_base[perm]
            type_ix: Dict[int, int] = {}

            def _tix(ct: object) -> int:
                v = type_ix.get(id(ct))
                if v is None:
                    v = type_ix[id(ct)] = len(type_ix)
                return v

            old_ct = np.asarray(
                [_tix(c.cluster.core_type) for c in old.cores], dtype=np.intp
            )
            new_ct = np.asarray(
                [_tix(c.cluster.core_type) for c in cores], dtype=np.intp
            )
            retype = np.nonzero(old_ct[old.core_ix[perm]] != new_ct[ep.core_ix])[0]
            for i in retype.tolist():
                t = tasks[i]
                ep.cost_base[i] = t.profile.cost_pu_s_per_beat(
                    cores[core_ix[i]].cluster.core_type, 1.0
                )
        else:
            ep.tgt_hr = np.fromiter(
                (t.target_hr for t in tasks), dtype=float, count=n
            )
            cost_base: List[float] = []
            has_limit: List[bool] = []
            limit: List[float] = []
            lo: List[float] = []
            hi: List[float] = []
            rel_eps = 1e-9  # HeartRateRange._REL_EPS, inlined like metrics.record
            for i, t in enumerate(tasks):
                core_type = cores[core_ix[i]].cluster.core_type
                cost_base.append(t.profile.cost_pu_s_per_beat(core_type, 1.0))
                wl = t.profile.work_limit_factor
                has_limit.append(wl is not None)
                limit.append(wl if wl is not None else 0.0)
                rng = t.hr_range
                lo.append(rng.min_hr * (1.0 - rel_eps))
                hi.append(rng.max_hr * (1.0 + rel_eps))
            ep.cost_base = np.asarray(cost_base, dtype=float)
            ep.has_limit = np.asarray(has_limit, dtype=bool)
            ep.limit = np.asarray(limit, dtype=float)
            ep.lo = np.asarray(lo, dtype=float)
            ep.hi = np.asarray(hi, dtype=float)
        ep.any_limit = bool(ep.has_limit.any())

        # Mutable state columns, initialised from the authoritative
        # attributes (write-back keeps the two views identical).  After
        # the sync() barrier above, the previous epoch's columns equal
        # the attributes exactly, so the permuted gather is the same
        # seed without the per-task attribute walk.
        if perm is not None:
            ep.beats = old.beats[perm]
            ep.work = old.work[perm]
            ep.sup = old.sup[perm]
            ep.con = old.con[perm]
            ep.dem = old.dem[perm]
        else:
            ep.beats = np.fromiter(
                (t.total_beats for t in tasks), dtype=float, count=n
            )
            ep.work = np.fromiter(
                (t.total_work_pu_s for t in tasks), dtype=float, count=n
            )
            ep.sup = np.fromiter(
                (t.last_supply_pus for t in tasks), dtype=float, count=n
            )
            ep.con = np.fromiter(
                (t.last_consumed_pus for t in tasks), dtype=float, count=n
            )
            ep.dem = np.fromiter(
                (t.last_demand_pus for t in tasks), dtype=float, count=n
            )
        tracked = self.load_tracker._load
        ep.load = np.fromiter((tracked.get(t, 0.0) for t in tasks), dtype=float, count=n)
        ep.has_load = np.fromiter((t in tracked for t in tasks), dtype=bool, count=n)

        # Phase traces: group rows by trace type for vector evaluation;
        # anything else (piecewise, custom) evaluates per task.
        if perm is not None:
            inv = np.empty(n, dtype=np.intp)
            inv[perm] = np.arange(n, dtype=np.intp)
            self._remap_phase_groups(ep, old, perm, inv, n)
            ep.mult_buf = np.empty(n, dtype=float)
            return self._finish_epoch(ep, tasks, n, dt, old=old, inv=inv)
        const_rows: List[int] = []
        const_vals: List[float] = []
        sin_rows: List[int] = []
        sin_p: List[Tuple[float, float, float, float]] = []
        sqw_rows: List[int] = []
        sqw_p: List[Tuple[float, float, float, float, float, float]] = []
        ph_py: List[Tuple[int, Task]] = []
        for i, t in enumerate(tasks):
            ph = t.profile.phases
            tp = type(ph)
            if tp is ConstantPhase:
                const_rows.append(i)
                const_vals.append(ph.multiplier)
            elif tp is SinusoidalPhases:
                sin_rows.append(i)
                sin_p.append((t.start_time, ph.amplitude, ph.period_s, ph.offset_s))
            elif tp is SquareWavePhases:
                sqw_rows.append(i)
                sqw_p.append(
                    (t.start_time, ph.period_s, ph.low, ph.high, ph.duty, ph.offset_s)
                )
            else:
                ph_py.append((i, t))
        ep.all_const = len(const_rows) == n
        ep.ph_py = ph_py
        if ep.all_const:
            ep.const_buf = np.asarray(const_vals, dtype=float)
            ep.ph_const_rows = None
            ep.ph_const_vals = None
            # Tick-invariant demand chain (same expressions as the per-tick
            # path, evaluated once): cost = base * mult, demand = hr * cost.
            ep.cost_const = ep.cost_base * ep.const_buf
            ep.dem_const = ep.tgt_hr * ep.cost_const
        else:
            ep.cost_const = None
            ep.dem_const = None
            ep.const_buf = None
            ep.ph_const_rows = (
                np.asarray(const_rows, dtype=np.intp) if const_rows else None
            )
            ep.ph_const_vals = (
                np.asarray(const_vals, dtype=float) if const_rows else None
            )
        if sin_rows:
            ep.ph_sin_rows = np.asarray(sin_rows, dtype=np.intp)
            arr = np.asarray(sin_p, dtype=float)
            ep.ph_sin_start = arr[:, 0].copy()
            ep.ph_sin_amp = arr[:, 1].copy()
            ep.ph_sin_per = arr[:, 2].copy()
            ep.ph_sin_off = arr[:, 3].copy()
        else:
            ep.ph_sin_rows = None
            ep.ph_sin_start = ep.ph_sin_amp = ep.ph_sin_per = ep.ph_sin_off = None
        if sqw_rows:
            ep.ph_sqw_rows = np.asarray(sqw_rows, dtype=np.intp)
            arr = np.asarray(sqw_p, dtype=float)
            ep.ph_sqw_start = arr[:, 0].copy()
            ep.ph_sqw_per = arr[:, 1].copy()
            ep.ph_sqw_lo = arr[:, 2].copy()
            ep.ph_sqw_hi = arr[:, 3].copy()
            ep.ph_sqw_duty = arr[:, 4].copy()
            ep.ph_sqw_off = arr[:, 5].copy()
        else:
            ep.ph_sqw_rows = None
            ep.ph_sqw_start = ep.ph_sqw_per = ep.ph_sqw_lo = None
            ep.ph_sqw_hi = ep.ph_sqw_duty = ep.ph_sqw_off = None
        ep.mult_buf = np.empty(n, dtype=float)
        return self._finish_epoch(ep, tasks, n, dt)

    def _remap_phase_groups(
        self, ep: _Epoch, old: _Epoch, perm: "np.ndarray", inv: "np.ndarray", n: int
    ) -> None:
        """Carry the old epoch's phase-trace groups over a row permutation.

        Produces exactly what the per-task classification loop would:
        the trace parameters are task invariants, so each group maps row
        numbers through the inverse permutation and re-sorts ascending
        (the loop emits rows in ascending order).
        """
        ep.all_const = old.all_const
        ep.ph_py = sorted(
            ((int(inv[r]), t) for r, t in old.ph_py), key=lambda p: p[0]
        )
        if old.all_const:
            ep.const_buf = old.const_buf[perm]
            ep.ph_const_rows = None
            ep.ph_const_vals = None
            # cost_base can change on migration, so the tick-invariant
            # products are recomputed from the fresh columns.
            ep.cost_const = ep.cost_base * ep.const_buf
            ep.dem_const = ep.tgt_hr * ep.cost_const
        else:
            ep.cost_const = None
            ep.dem_const = None
            ep.const_buf = None
            if old.ph_const_rows is not None:
                rows = inv[old.ph_const_rows]
                order = np.argsort(rows)
                ep.ph_const_rows = rows[order]
                ep.ph_const_vals = old.ph_const_vals[order]
            else:
                ep.ph_const_rows = None
                ep.ph_const_vals = None
        if old.ph_sin_rows is not None:
            rows = inv[old.ph_sin_rows]
            order = np.argsort(rows)
            ep.ph_sin_rows = rows[order]
            ep.ph_sin_start = old.ph_sin_start[order]
            ep.ph_sin_amp = old.ph_sin_amp[order]
            ep.ph_sin_per = old.ph_sin_per[order]
            ep.ph_sin_off = old.ph_sin_off[order]
        else:
            ep.ph_sin_rows = None
            ep.ph_sin_start = ep.ph_sin_amp = ep.ph_sin_per = ep.ph_sin_off = None
        if old.ph_sqw_rows is not None:
            rows = inv[old.ph_sqw_rows]
            order = np.argsort(rows)
            ep.ph_sqw_rows = rows[order]
            ep.ph_sqw_start = old.ph_sqw_start[order]
            ep.ph_sqw_per = old.ph_sqw_per[order]
            ep.ph_sqw_lo = old.ph_sqw_lo[order]
            ep.ph_sqw_hi = old.ph_sqw_hi[order]
            ep.ph_sqw_duty = old.ph_sqw_duty[order]
            ep.ph_sqw_off = old.ph_sqw_off[order]
        else:
            ep.ph_sqw_rows = None
            ep.ph_sqw_start = ep.ph_sqw_per = ep.ph_sqw_lo = None
            ep.ph_sqw_hi = ep.ph_sqw_duty = ep.ph_sqw_off = None

    def _finish_epoch(
        self,
        ep: _Epoch,
        tasks: List[Task],
        n: int,
        dt: float,
        old: Optional[_Epoch] = None,
        inv: Optional["np.ndarray"] = None,
    ) -> _Epoch:
        # Heart-rate monitors: adopt plain, uninstrumented monitors (and
        # re-adopt views from a previous epoch) into shared rings; tasks
        # with wrapped/subclassed monitors keep the scalar route so
        # injected heartbeat faults keep working.  Views re-adopt via a
        # ring-to-ring array gather; scalar monitors round-trip through
        # their sample deques.
        windows: List[float] = [1.0] * n
        samples: List[Sequence[Tuple[float, float]]] = [()] * n
        vec_rows: List[int] = []
        py_rows: List[int] = []
        col_src: List[Tuple[int, _HRMRings, int]] = []
        for i, t in enumerate(tasks):
            hrm = t.hrm
            tp = type(hrm)
            plain = "record" not in hrm.__dict__
            if tp is HeartRateMonitor and plain:
                vec_rows.append(i)
                windows[i] = hrm._window_s
                samples[i] = tuple(hrm._samples)
            elif tp is ColumnarHRM and plain:
                vec_rows.append(i)
                # window comes from the source ring, gathered in adopt()
                col_src.append((i, hrm._rings, hrm._row))
            else:
                py_rows.append(i)
        steal = False
        if col_src:
            # Identity steal: a pure placement change keeps the task list
            # (and hence the row order) intact, so when every row's view
            # points at the outgoing epoch's rings in row order and the
            # tick length is unchanged, those rings are already this
            # epoch's rings -- adopt them wholesale.  The old epoch is
            # discarded on seal, so the arrays have a single owner.
            ring0 = old.rings if old is not None and old.dt == dt else None
            if (
                ring0 is not None
                and len(col_src) == n
                and all(
                    src is ring0 and row == i for i, src, row in col_src
                )
            ):
                ep.rings = ring0
                steal = True
            else:
                ep.rings = _HRMRings.adopt(windows, samples, col_src, dt)
        else:
            ep.rings = _HRMRings(windows, samples, dt)
        ep.vec_rows = np.asarray(vec_rows, dtype=np.intp)
        ep.py_rows = py_rows
        ep.py_set = set(py_rows)
        ep.all_vec = not py_rows and len(vec_rows) == n
        if not steal:
            # Stolen rings leave every task's existing view valid (same
            # rings object, same row); fresh rings need rebinding.
            for i in vec_rows:
                tasks[i].hrm = ColumnarHRM(ep.rings, i)

        # Metrics permutation: store rows in population order, usable
        # whenever the tick's active list is the population itself.
        # Against a same-population previous epoch, the new permutation
        # composes the old one with the row remap (self.tasks can only
        # change through invalidate_task_cache, which drops the epoch):
        # perm'[i] = rowmap'[tasks_pop[i]] = inv[old.perm[i]].
        if old is not None and inv is not None and old.covers_all and len(self.tasks) == n:
            ep.covers_all = True
            ep.perm = inv[old.perm]
            ep.perm_names = old.perm_names
            ep.perm_identity = bool(
                (ep.perm == np.arange(n, dtype=np.intp)).all()
            )
            ep.perm_lo = ep.lo if ep.perm_identity else ep.lo[ep.perm]
            ep.perm_hi = ep.hi if ep.perm_identity else ep.hi[ep.perm]
            return self._seal_epoch(ep, n)
        ep.covers_all = n == len(self.tasks) and all(t in ep.rowmap for t in self.tasks)
        if ep.covers_all:
            ep.perm = np.asarray([ep.rowmap[t] for t in self.tasks], dtype=np.intp)
            ep.perm_names = tuple(t.name for t in self.tasks)
            ep.perm_identity = bool((ep.perm == np.arange(n, dtype=np.intp)).all())
            ep.perm_lo = ep.lo if ep.perm_identity else ep.lo[ep.perm]
            ep.perm_hi = ep.hi if ep.perm_identity else ep.hi[ep.perm]
        else:
            ep.perm = None
            ep.perm_names = None
            ep.perm_identity = False
            ep.perm_lo = None
            ep.perm_hi = None
        return self._seal_epoch(ep, n)

    def _seal_epoch(self, ep: _Epoch, n: int) -> _Epoch:
        """Reset the lazily-derived members and install the epoch."""
        ep.all_has_load = n > 0 and bool(ep.has_load.all())
        ep.alloc_has = None
        ep.alloc_val = None
        ep.weight_val = None
        ep.alloc_all = False
        ep.alloc_none = False
        ep.g_key = None
        ep.g_sup_core = None
        ep.g_grants = None
        ep.g_cons = None
        ep.g_beats_inc = None
        ep.g_work_inc = None
        ep.g_util = None
        ep.g_inst = None
        ep.g_load_c = None
        self._grant_inputs_dirty = True
        self._hr_cache = None
        self._hr_stamp = -1
        # Fresh columns == object view: the epoch starts clean.
        self._col_synced.update(self._col_dirty)
        self._view_dirty = False
        self._epoch = ep
        return ep

    # -- the hot loop -------------------------------------------------------------
    def _dispatch(self) -> None:
        placement = self.placement
        dt = self.config.dt
        now = self.now
        ep = self._epoch
        if ep is None or ep.version != placement.version or ep.dt != dt:
            ep = self._build_epoch()
        n = ep.n
        if n == 0:
            for core in ep.cores:
                core.utilization = 0.0
            active = self._active_now()
            if active:  # placed_count() == 0 != len(active)
                for task in active:
                    task.idle_tick(now, dt)
            return

        if ep.max_start <= now < ep.min_end and ep.fz_max <= now:
            self._dispatch_fast(ep, now, dt)
            return

        # The masked path writes zeros into frozen/inactive rows of the
        # state columns; force the fast path to rebuild its consume cache
        # (and re-write sup/con/dem) on the next hot tick.
        ep.g_key = None

        # Rare tick (arrival/retire/freeze window): run it fully eager.
        # The barrier first flushes whatever the lazy fast path deferred
        # -- in particular load-dict values of rows inactive this tick,
        # which the masked update below would otherwise leave stale.
        self.sync()

        active = (now >= ep.start) & (now < ep.end)
        # ``frozen_until`` is authoritative on the task (migrations and
        # tests write it directly), so gather it fresh each tick.
        fz = np.fromiter((t.frozen_until for t in ep.tasks), dtype=float, count=n)
        frozen = active & (fz > now)
        runnable = active & ~frozen
        inactive_mapped = not bool(active.all())

        # Demand at ``now`` (same expression chain as Task.consume).
        mult = ep.multipliers(now)
        cost = ep.cost_base * mult
        demand = ep.tgt_hr * cost

        # Grants: vectorized compute_grants per core, same fold order.
        cix = ep.core_ix
        ncores = ep.ncores
        sup_core = ep.core_supplies()
        if self._grant_inputs_dirty or ep.alloc_has is None:
            ep.refresh_grant_inputs(self._allocations, self._weights)
            self._grant_inputs_dirty = False
        expl = runnable & ep.alloc_has
        pooled = runnable & ~ep.alloc_has
        ev = np.where(expl, np.where(ep.alloc_val > 0.0, ep.alloc_val, 0.0), 0.0)
        requested = np.bincount(cix, weights=ev, minlength=ncores)
        need_scale = (requested > sup_core) & (requested > 0.0)
        scale = np.where(
            need_scale, sup_core / np.where(need_scale, requested, 1.0), 1.0
        )
        grants = ev * scale[cix]
        granted_total = np.bincount(cix, weights=grants, minlength=ncores)
        leftover = sup_core - granted_total
        wv = np.where(pooled, np.where(ep.weight_val > 0.0, ep.weight_val, 0.0), 0.0)
        total_w = np.bincount(cix, weights=wv, minlength=ncores)
        npooled = np.bincount(cix[pooled], minlength=ncores)
        weighted = (leftover[cix] * wv) / np.where(total_w > 0.0, total_w, 1.0)[cix]
        equal = leftover[cix] / np.where(npooled > 0, npooled, 1)[cix]
        pool_grant = np.where(total_w[cix] > 0.0, weighted, equal)
        grants = np.where(pooled & (leftover[cix] > 0.0), pool_grant, grants)
        total = np.bincount(cix, weights=grants, minlength=ncores)
        over = total > sup_core * (1.0 + 1e-9)
        if bool(over.any()):
            factor = np.where(over, sup_core / np.where(over, total, 1.0), 1.0)
            grants = grants * factor[cix]

        # Consume (Task.consume, vectorized).
        cons = grants
        if ep.any_limit:
            cons = np.where(ep.has_limit, np.minimum(grants, ep.limit * demand), grants)
        beats = cons * dt / cost
        np.add(ep.beats, beats, out=ep.beats, where=runnable)
        np.add(ep.work, cons * dt, out=ep.work, where=runnable)
        np.copyto(ep.sup, grants, where=runnable)
        np.copyto(ep.con, cons, where=runnable)
        np.copyto(ep.dem, demand, where=runnable)
        if bool(frozen.any()):
            np.copyto(ep.sup, 0.0, where=frozen)
            np.copyto(ep.con, 0.0, where=frozen)

        # Core utilization: in-order fold of consumed supply per core.
        consumed_core = np.bincount(
            cix, weights=np.where(runnable, cons, 0.0), minlength=ncores
        )
        util = np.where(
            sup_core > 0.0,
            np.minimum(1.0, consumed_core / np.where(sup_core > 0.0, sup_core, 1.0)),
            0.0,
        )
        for core, u in zip(ep.cores, util.tolist()):
            core.utilization = u

        # Load tracking (LoadTracker.update, vectorized): runnable rows
        # fold their granted supply, frozen rows fold zero supply.
        g_eff = np.where(runnable, grants, 0.0)
        inst = np.where(
            demand <= 0.0,
            0.0,
            np.where(
                g_eff <= 0.0,
                1.0,
                np.minimum(1.0, demand / np.where(g_eff > 0.0, g_eff, 1.0)),
            ),
        )
        decay = self.load_tracker.decay_for(dt)
        prev = np.where(ep.has_load, ep.load, inst)
        np.copyto(ep.load, decay * prev + (1.0 - decay) * inst, where=active)
        ep.has_load |= active
        any_frozen = bool(frozen.any())
        if any_frozen:
            order = ep.ordered_rows(runnable, frozen)
        else:
            order = np.nonzero(active)[0].tolist()
        tasks = ep.tasks
        loads = ep.load
        self.load_tracker.update_many(
            (tasks[i], v) for i, v in zip(order, loads[order].tolist())
        )

        # Heartbeats: ring append for adopted rows, scalar record for the
        # instrumented ones (both runnable and frozen record; inactive
        # mapped tasks do not).
        t_new = now + dt
        if ep.vec_rows.size:
            act_vec = ep.vec_rows[active[ep.vec_rows]]
            ep.rings.append_many(act_vec, t_new, ep.beats[act_vec])
        if ep.py_rows:
            b = ep.beats
            for i in ep.py_rows:
                if active[i]:
                    tasks[i].hrm.record(t_new, float(b[i]))
            # Scalar-route mutations bypass the ring stamp; invalidate
            # the heart-rate cache by hand.
            ep.rings.stamp += 1

        # Write-through: the task attributes stay authoritative, so the
        # epoch is a pure cache and every out-of-band reader/mutator
        # (faults, snapshots, admission, tests) keeps working unchanged.
        bl = ep.beats.tolist()
        wl = ep.work.tolist()
        sl = ep.sup.tolist()
        cl = ep.con.tolist()
        dl = ep.dem.tolist()
        for t, tb, tw, ts, tc, td in zip(tasks, bl, wl, sl, cl, dl):
            t.total_beats = tb
            t.total_work_pu_s = tw
            t.last_supply_pus = ts
            t.last_consumed_pus = tc
            t.last_demand_pus = td

        # Active tasks not mapped to any core idle in place (same scan
        # condition as the object engine).
        active_list = self._active_now()
        if inactive_mapped or placement.placed_count() != len(active_list):
            for task in active_list:
                if not placement.is_placed(task):
                    task.idle_tick(now, dt)

    def _grants_all(self, ep: _Epoch, sup_core: "np.ndarray") -> "np.ndarray":
        """compute_grants over every core with all mapped tasks runnable.

        Identical fold order to the masked path in :meth:`_dispatch`; the
        all-explicit / all-pooled shortcuts skip arms whose inputs are
        statically zero, which leaves the surviving expressions unchanged.
        """
        cix = ep.core_ix
        ncores = ep.ncores
        if ep.alloc_all:
            av = ep.alloc_val
            ev = np.where(av > 0.0, av, 0.0)
            requested = np.bincount(cix, weights=ev, minlength=ncores)
            need_scale = (requested > sup_core) & (requested > 0.0)
            scale = np.where(
                need_scale, sup_core / np.where(need_scale, requested, 1.0), 1.0
            )
            grants = ev * scale[cix]
            total = np.bincount(cix, weights=grants, minlength=ncores)
        elif ep.alloc_none:
            # No explicit allocations: grants start at zero, the whole
            # supply is the leftover shared by the pooled (= all) tasks.
            leftover = sup_core
            wv = np.where(ep.weight_val > 0.0, ep.weight_val, 0.0)
            total_w = np.bincount(cix, weights=wv, minlength=ncores)
            npooled = ep.core_counts
            weighted = (leftover[cix] * wv) / np.where(total_w > 0.0, total_w, 1.0)[cix]
            equal = leftover[cix] / np.where(npooled > 0, npooled, 1)[cix]
            pool_grant = np.where(total_w[cix] > 0.0, weighted, equal)
            grants = np.where(leftover[cix] > 0.0, pool_grant, 0.0)
            total = np.bincount(cix, weights=grants, minlength=ncores)
        else:
            expl = ep.alloc_has
            ev = np.where(expl, np.where(ep.alloc_val > 0.0, ep.alloc_val, 0.0), 0.0)
            requested = np.bincount(cix, weights=ev, minlength=ncores)
            need_scale = (requested > sup_core) & (requested > 0.0)
            scale = np.where(
                need_scale, sup_core / np.where(need_scale, requested, 1.0), 1.0
            )
            grants = ev * scale[cix]
            granted_total = np.bincount(cix, weights=grants, minlength=ncores)
            leftover = sup_core - granted_total
            pooled = ~expl
            wv = np.where(pooled, np.where(ep.weight_val > 0.0, ep.weight_val, 0.0), 0.0)
            total_w = np.bincount(cix, weights=wv, minlength=ncores)
            npooled = np.bincount(cix[pooled], minlength=ncores)
            weighted = (leftover[cix] * wv) / np.where(total_w > 0.0, total_w, 1.0)[cix]
            equal = leftover[cix] / np.where(npooled > 0, npooled, 1)[cix]
            pool_grant = np.where(total_w[cix] > 0.0, weighted, equal)
            grants = np.where(pooled & (leftover[cix] > 0.0), pool_grant, grants)
            total = np.bincount(cix, weights=grants, minlength=ncores)
        over = total > sup_core * (1.0 + 1e-9)
        if bool(over.any()):
            factor = np.where(over, sup_core / np.where(over, total, 1.0), 1.0)
            grants = grants * factor[cix]
        return grants

    def _dispatch_fast(self, ep: _Epoch, now: float, dt: float) -> None:
        """Hot tick: every mapped task is active and unfrozen.

        Grants depend only on (allocations, weights, per-cluster supply);
        consumption additionally on the phase multiplier.  Both layers are
        cached and reused until one of their inputs changes, so between
        market rounds a tick reduces to the genuinely time-varying work:
        beat/work accumulation, the load EWMA fold, heart-rate ring
        appends and -- in eager mode only -- the attribute write-back.
        Lazy mode marks the written columns dirty instead and leaves the
        object view to the next :meth:`sync` barrier.
        """
        tasks = ep.tasks
        eager = self.sync_mode == "eager"
        if self._grant_inputs_dirty or ep.alloc_has is None:
            ep.refresh_grant_inputs(self._allocations, self._weights)
            self._grant_inputs_dirty = False
        sup_key = tuple(cl.supply_pus for cl in ep.clusters)
        if ep.g_key != sup_key:
            ep.g_sup_core = np.asarray(sup_key, dtype=float)[ep.cluster_ix]
            ep.g_grants = self._grants_all(ep, ep.g_sup_core)
            ep.g_key = sup_key
            refresh = True
        else:
            refresh = ep.dem_const is None
        if refresh:
            if ep.dem_const is not None:
                demand, cost = ep.dem_const, ep.cost_const
            else:
                mult = ep.multipliers(now)
                cost = ep.cost_base * mult
                demand = ep.tgt_hr * cost
            grants = ep.g_grants
            cons = grants
            if ep.any_limit:
                cons = np.where(
                    ep.has_limit, np.minimum(grants, ep.limit * demand), grants
                )
            ep.g_cons = cons
            ep.g_beats_inc = cons * dt / cost
            ep.g_work_inc = cons * dt
            consumed_core = np.bincount(ep.core_ix, weights=cons, minlength=ep.ncores)
            sup_core = ep.g_sup_core
            ep.g_util = np.where(
                sup_core > 0.0,
                np.minimum(1.0, consumed_core / np.where(sup_core > 0.0, sup_core, 1.0)),
                0.0,
            ).tolist()
            inst = np.where(
                demand <= 0.0,
                0.0,
                np.where(
                    grants <= 0.0,
                    1.0,
                    np.minimum(1.0, demand / np.where(grants > 0.0, grants, 1.0)),
                ),
            )
            ep.g_inst = inst
            ep.g_load_c = (1.0 - self.load_tracker.decay_for(dt)) * inst
            ep.sup[...] = grants
            ep.con[...] = cons
            ep.dem[...] = demand
            if eager:
                sl = grants.tolist()
                cl_ = cons.tolist()
                dl = demand.tolist()
                for t, ts, tc, td in zip(tasks, sl, cl_, dl):
                    t.last_supply_pus = ts
                    t.last_consumed_pus = tc
                    t.last_demand_pus = td
            else:
                # Stamp with tick_index + 1: tick_index is 0-based and the
                # synced stamps start at 0, so tick 0's writes must land
                # strictly above them.
                dirty = self._col_dirty
                ti = self.tick_index + 1
                dirty["sup"] = dirty["con"] = dirty["dem"] = ti
                self._view_dirty = True

        # Time-varying tail: accumulate, fold, record, write back.
        ep.beats += ep.g_beats_inc
        ep.work += ep.g_work_inc
        for core, u in zip(ep.cores, ep.g_util):
            core.utilization = u
        decay = self.load_tracker.decay_for(dt)
        load = ep.load
        if ep.all_has_load:
            np.add(decay * load, ep.g_load_c, out=load)
            if eager:
                self.load_tracker.update_many(zip(tasks, load.tolist()))
            else:
                # Every key is already present, so deferring the dict
                # write cannot change insertion order; sync() updates
                # values in place.
                self._col_dirty["load"] = self.tick_index + 1
                self._view_dirty = True
        else:
            prev = np.where(ep.has_load, load, ep.g_inst)
            np.add(decay * prev, ep.g_load_c, out=load)
            ep.has_load[...] = True
            ep.all_has_load = True
            # First fold for some rows: the dict update below may insert
            # new keys, whose position is part of the checkpoint bytes --
            # stay eager regardless of mode.
            self.load_tracker.update_many(zip(tasks, load.tolist()))

        t_new = now + dt
        if ep.all_vec:
            ep.rings.append_many(ep.vec_rows, t_new, ep.beats)
        elif ep.vec_rows.size:
            ep.rings.append_many(ep.vec_rows, t_new, ep.beats[ep.vec_rows])
        if ep.py_rows:
            b = ep.beats
            for i in ep.py_rows:
                tasks[i].hrm.record(t_new, float(b[i]))
            ep.rings.stamp += 1

        # sup/con/dem are unchanged on cache-hit ticks, so only the
        # accumulating attributes need the write-through (eager mode);
        # lazy mode marks the columns and lets the barrier materialise.
        if eager:
            bl = ep.beats.tolist()
            wl = ep.work.tolist()
            for t, tb, tw in zip(tasks, bl, wl):
                t.total_beats = tb
                t.total_work_pu_s = tw
        else:
            dirty = self._col_dirty
            ti = self.tick_index + 1
            dirty["beats"] = dirty["work"] = ti
            self._view_dirty = True
            if self.sync_mode == "poison" and not self._poisoned:
                pb, pw, ps, pc, pd = _POISONS
                for t in tasks:
                    t.total_beats = pb
                    t.total_work_pu_s = pw
                    t.last_supply_pus = ps
                    t.last_consumed_pus = pc
                    t.last_demand_pus = pd
                self._poisoned = True

        active_list = self._active_now()
        placement = self.placement
        if placement.placed_count() != len(active_list):
            for task in active_list:
                if not placement.is_placed(task):
                    task.idle_tick(now, dt)
