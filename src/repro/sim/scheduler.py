"""Per-core supply dispatch: explicit allocations plus weighted fair share.

The paper's kernel modules realise the market allocation by steering the
Linux fair scheduler through per-task nice values; here we grant supply
directly.  A governor can pin an explicit PU allocation per task (the PPM
market does), assign scheduling weights (HPM's PID output, HL's plain
fairness), or leave tasks alone (equal weights).

Explicit allocations are honoured exactly when they fit; if they exceed
the core's supply (e.g. the cluster's frequency just dropped under the
market's feet) they are scaled down proportionally, which is what a
share-based scheduler would do.  Remaining supply after explicit
allocations is split among weighted tasks by weight.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..tasks.task import Task


def compute_grants(
    core_supply_pus: float,
    tasks: Sequence[Task],
    allocations: Mapping[Task, float],
    weights: Mapping[Task, float],
) -> Dict[Task, float]:
    """Split a core's supply among its tasks.

    Args:
        core_supply_pus: The core's current supply ``S_c``.
        tasks: Runnable tasks mapped to the core.
        allocations: Explicit per-task PU grants (tasks present here are
            *not* part of the fair-share pool).
        weights: Scheduling weights for tasks without explicit
            allocations; missing tasks default to weight 1.0.

    Returns:
        PUs granted to each task this tick.  The sum never exceeds the
        core's supply.
    """
    if core_supply_pus < 0:
        raise ValueError("core supply must be non-negative")
    grants: Dict[Task, float] = {}
    if not tasks:
        return grants
    if core_supply_pus == 0.0:
        return {task: 0.0 for task in tasks}

    # Single pass: partition tasks and accumulate the explicit request in
    # the same left-to-right order the two-pass version used, so the float
    # sums keep their exact bits.
    explicit: list = []
    explicit_vals: list = []
    pooled: list = []
    requested = 0.0
    for t in tasks:
        if t in allocations:
            v = max(0.0, allocations[t])
            explicit.append(t)
            explicit_vals.append(v)
            requested += v
        else:
            pooled.append(t)

    scale = 1.0
    if requested > core_supply_pus and requested > 0.0:
        scale = core_supply_pus / requested
    granted_total = 0.0
    for task, v in zip(explicit, explicit_vals):
        g = v * scale
        grants[task] = g
        granted_total += g

    leftover = core_supply_pus - granted_total
    if pooled and leftover > 0.0:
        pooled_weights = [max(0.0, weights.get(t, 1.0)) for t in pooled]
        total_weight = 0.0
        for w in pooled_weights:
            total_weight += w
        if total_weight <= 0.0:
            share = leftover / len(pooled)
            for task in pooled:
                grants[task] = share
        else:
            for task, w in zip(pooled, pooled_weights):
                grants[task] = leftover * w / total_weight
    else:
        for task in pooled:
            grants[task] = 0.0
    # Subnormal weights can defeat the proportional split above: with a
    # single weight of 5e-324, ``leftover * w / total_weight`` rounds
    # through the subnormal range and can exceed the leftover itself.
    # Rescale only on a material overshoot so ordinary 1-ulp rounding
    # noise keeps its exact bits (replay journals depend on them).
    # Fold in task (dispatch) order -- not dict insertion order -- so the
    # batched kernel's in-order bincount reduction matches bit-for-bit.
    total = 0.0
    for t in tasks:
        total += grants[t]
    if total > core_supply_pus * (1.0 + 1e-9):
        factor = core_supply_pus / total
        for task in grants:
            grants[task] *= factor
    return grants
