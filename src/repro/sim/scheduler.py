"""Per-core supply dispatch: explicit allocations plus weighted fair share.

The paper's kernel modules realise the market allocation by steering the
Linux fair scheduler through per-task nice values; here we grant supply
directly.  A governor can pin an explicit PU allocation per task (the PPM
market does), assign scheduling weights (HPM's PID output, HL's plain
fairness), or leave tasks alone (equal weights).

Explicit allocations are honoured exactly when they fit; if they exceed
the core's supply (e.g. the cluster's frequency just dropped under the
market's feet) they are scaled down proportionally, which is what a
share-based scheduler would do.  Remaining supply after explicit
allocations is split among weighted tasks by weight.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..tasks.task import Task


def compute_grants(
    core_supply_pus: float,
    tasks: Sequence[Task],
    allocations: Mapping[Task, float],
    weights: Mapping[Task, float],
) -> Dict[Task, float]:
    """Split a core's supply among its tasks.

    Args:
        core_supply_pus: The core's current supply ``S_c``.
        tasks: Runnable tasks mapped to the core.
        allocations: Explicit per-task PU grants (tasks present here are
            *not* part of the fair-share pool).
        weights: Scheduling weights for tasks without explicit
            allocations; missing tasks default to weight 1.0.

    Returns:
        PUs granted to each task this tick.  The sum never exceeds the
        core's supply.
    """
    if core_supply_pus < 0:
        raise ValueError("core supply must be non-negative")
    grants: Dict[Task, float] = {}
    if not tasks:
        return grants
    if core_supply_pus == 0.0:
        return {task: 0.0 for task in tasks}

    explicit = [t for t in tasks if t in allocations]
    pooled = [t for t in tasks if t not in allocations]

    requested = sum(max(0.0, allocations[t]) for t in explicit)
    scale = 1.0
    if requested > core_supply_pus and requested > 0.0:
        scale = core_supply_pus / requested
    for task in explicit:
        grants[task] = max(0.0, allocations[task]) * scale

    leftover = core_supply_pus - sum(grants.values())
    if pooled and leftover > 0.0:
        total_weight = sum(max(0.0, weights.get(t, 1.0)) for t in pooled)
        if total_weight <= 0.0:
            share = leftover / len(pooled)
            for task in pooled:
                grants[task] = share
        else:
            for task in pooled:
                grants[task] = leftover * max(0.0, weights.get(task, 1.0)) / total_weight
    else:
        for task in pooled:
            grants[task] = 0.0
    return grants
