"""Per-entity load tracking (PELT-style), the paper's HRM substitute.

The paper notes that without heartbeat instrumentation, "the time a task
spends in the run-queue in a given epoch of scheduling" -- Paul Turner's
per-entity load tracking, merged in Linux 3.7 -- "can be used in lieu of
heartbeats".  The HL baseline also keys its big/LITTLE migration decisions
off this *activeness* signal.

We track, per task, an exponentially decayed average of its runnable
fraction: 1.0 while the task wants more supply than it receives, less when
it is input-bound and idles part of the tick.
"""

from __future__ import annotations

import math
from typing import Dict

from ..tasks.task import Task


class LoadTracker:
    """Exponentially decayed runnable-fraction average per task.

    Args:
        halflife_s: Time for an old contribution to decay to half weight.
            Linux's PELT halves roughly every 32 ms; that default keeps
            the signal responsive at the framework's invocation periods.
    """

    def __init__(self, halflife_s: float = 0.032):
        if halflife_s <= 0:
            raise ValueError("halflife must be positive")
        self._halflife_s = halflife_s
        self._load: Dict[Task, float] = {}
        # Decay factor depends only on (halflife, dt); dt is fixed per run,
        # so cache the exp() result instead of recomputing it per task-tick.
        self._decay_dt: float = -1.0
        self._decay: float = 0.0

    @staticmethod
    def runnable_fraction(granted_pus: float, demand_pus: float) -> float:
        """Instantaneous runnable fraction for one tick.

        A task granted less than it demands is runnable the whole tick;
        one granted more only occupies the CPU ``demand/granted`` of it.
        """
        if demand_pus <= 0.0:
            return 0.0
        if granted_pus <= 0.0:
            return 1.0
        return min(1.0, demand_pus / granted_pus)

    def update(self, task: Task, granted_pus: float, demand_pus: float, dt: float) -> float:
        """Fold one tick's observation into the task's tracked load."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        instantaneous = self.runnable_fraction(granted_pus, demand_pus)
        if dt != self._decay_dt:
            self._decay = math.exp(-math.log(2.0) * dt / self._halflife_s)
            self._decay_dt = dt
        decay = self._decay
        previous = self._load.get(task, instantaneous)
        updated = decay * previous + (1.0 - decay) * instantaneous
        self._load[task] = updated
        return updated

    def decay_for(self, dt: float) -> float:
        """The cached decay factor for ``dt`` (same expression as update).

        Exposed so the columnar engine's vectorized EWMA folds with the
        exact float the scalar path uses.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if dt != self._decay_dt:
            self._decay = math.exp(-math.log(2.0) * dt / self._halflife_s)
            self._decay_dt = dt
        return self._decay

    def update_many(self, pairs) -> None:
        """Bulk write of externally computed loads (columnar engine).

        ``pairs`` is an iterable of ``(task, load)``; insertion order
        follows the iterable, matching the scalar dispatch order when the
        caller supplies it that way.
        """
        self._load.update(pairs)

    def load(self, task: Task) -> float:
        """Tracked load in [0, 1]; 0 for never-seen tasks."""
        return self._load.get(task, 0.0)

    def forget(self, task: Task) -> None:
        self._load.pop(task, None)
