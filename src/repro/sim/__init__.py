"""Discrete-time simulation substrate (the "Linux kernel" of the repro).

Owns task placement, proportional-share dispatch, per-entity load
tracking, migration execution with measured costs, sensor sampling and
metrics collection, and drives a pluggable governor every tick.
"""

from .engine import Governor, SimConfig, Simulation, derive_stream_seed
from .loadtracking import LoadTracker
from .metrics import MetricsCollector, TaskSample, TickSample
from .migration import MigrationManager, MigrationRecord
from .placement import Placement
from .scheduler import compute_grants
from .tracing import TraceEvent, Tracer, attach_tracer

__all__ = [
    "Governor",
    "LoadTracker",
    "MetricsCollector",
    "MigrationManager",
    "MigrationRecord",
    "Placement",
    "SimConfig",
    "Simulation",
    "TaskSample",
    "TraceEvent",
    "Tracer",
    "TickSample",
    "attach_tracer",
    "compute_grants",
    "derive_stream_seed",
]
