"""The discrete-time simulation engine.

Plays the role of the Linux kernel on the TC2 board: it owns the task-to-
core mapping, dispatches supply to tasks every tick, advances DVFS
transitions, samples the power sensors, and invokes the installed governor
(power-management policy) once per tick.  Governors mutate the system
exclusively through the engine's control surface (allocations, weights,
DVFS requests, migrations, power gating), mirroring how the paper's agents
act through nice values, cpufreq and sched_setaffinity.

The default tick is 10 ms -- the Linux scheduling epoch the paper quotes;
governors implement their own slower invocation periods on top (the PPM
bid round is ~32 ms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from ..hw.energy import EnergyMeter
from ..hw.migration import MigrationCostModel
from ..hw.sensors import PowerSensor, SensorSample
from ..hw.topology import Chip, Cluster, Core
from ..tasks.task import Task
from .loadtracking import LoadTracker
from .metrics import MetricsCollector
from .migration import MigrationManager, MigrationRecord
from .placement import Placement
from .scheduler import compute_grants


class Governor(Protocol):
    """A power-management policy driving the engine's control surface."""

    def prepare(self, sim: "Simulation") -> None:
        """Called once before the first tick (initial placement etc.)."""

    def on_tick(self, sim: "Simulation") -> None:
        """Called every tick before supply is dispatched."""


@dataclass
class SimConfig:
    """Engine configuration.

    Attributes:
        dt: Tick length in seconds (default: the 10 ms Linux epoch).
        auto_power_gate: Power clusters down when they hold no tasks and
            back up when tasks are placed on them (paper section 2: "If
            there are no active tasks in an entire cluster, then we can
            power down that cluster").
        metrics_warmup_s: Prefix excluded from summary metrics.
        sensor_noise_std_w: Gaussian noise on power readings (0 = ideal).
        seed: Seed for the engine's stochastic parts (sensor noise).
    """

    dt: float = 0.01
    auto_power_gate: bool = True
    metrics_warmup_s: float = 2.0
    sensor_noise_std_w: float = 0.0
    seed: Optional[int] = None


class Simulation:
    """One experiment: a chip, a task set and a governor, advanced in ticks."""

    def __init__(
        self,
        chip: Chip,
        tasks: Sequence[Task],
        governor: Governor,
        config: Optional[SimConfig] = None,
        migration_cost_model: Optional[MigrationCostModel] = None,
    ):
        self.chip = chip
        self.tasks: List[Task] = list(tasks)
        self.governor = governor
        self.config = config or SimConfig()
        if self.config.dt <= 0:
            raise ValueError("dt must be positive")
        self.placement = Placement(chip)
        self.migrations = MigrationManager(
            placement=self.placement,
            cost_model=migration_cost_model or MigrationCostModel(),
        )
        self.load_tracker = LoadTracker()
        self.sensor = PowerSensor(
            chip, noise_std_w=self.config.sensor_noise_std_w, seed=self.config.seed
        )
        self.energy = EnergyMeter()
        self.metrics = MetricsCollector(warmup_s=self.config.metrics_warmup_s)
        self.now: float = 0.0
        self.tick_index: int = 0
        self._allocations: Dict[Task, float] = {}
        self._weights: Dict[Task, float] = {}
        self._prepared = False
        self._gate_held_down: set = set()

    # ------------------------------------------------------------------
    # Control surface used by governors
    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        return self.config.dt

    def active_tasks(self) -> List[Task]:
        """Tasks alive at the current time."""
        return [t for t in self.tasks if t.is_active(self.now)]

    def set_allocation(self, task: Task, pus: float) -> None:
        """Pin an explicit supply allocation for ``task`` (PPM market)."""
        self._allocations[task] = max(0.0, pus)

    def clear_allocation(self, task: Task) -> None:
        self._allocations.pop(task, None)

    def clear_allocations(self) -> None:
        self._allocations.clear()

    def set_weight(self, task: Task, weight: float) -> None:
        """Set the fair-share weight for ``task`` (nice-value analogue)."""
        self._weights[task] = max(0.0, weight)

    def weight_of(self, task: Task) -> float:
        return self._weights.get(task, 1.0)

    def allocation_of(self, task: Task) -> Optional[float]:
        return self._allocations.get(task)

    def request_level(self, cluster: Cluster, index: int) -> bool:
        """Ask a cluster's regulator for V-F level ``index`` (cpufreq)."""
        return cluster.regulator.request(index)

    def step_level(self, cluster: Cluster, delta: int) -> bool:
        return cluster.regulator.step(delta)

    def place(self, task: Task, core: Core) -> None:
        """Initial (cost-free) placement of a task onto a core."""
        self.placement.place(task, core)

    def migrate(self, task: Task, destination: Core) -> MigrationRecord:
        """Migrate a task, charging the measured cost."""
        return self.migrations.migrate(task, destination, now=self.now)

    def power_down(self, cluster: Cluster, hold: bool = False) -> None:
        """Gate a cluster off.  ``hold`` keeps it off even with tasks mapped."""
        cluster.power_down()
        if hold:
            self._gate_held_down.add(cluster.cluster_id)

    def power_up(self, cluster: Cluster) -> None:
        self._gate_held_down.discard(cluster.cluster_id)
        cluster.power_up()

    def last_power_sample(self) -> Optional[SensorSample]:
        return self.sensor.last_sample

    # ------------------------------------------------------------------
    # Engine loop
    # ------------------------------------------------------------------
    def _default_place(self, task: Task) -> None:
        """Place a new task on the least-loaded core of the slowest cluster.

        Matches the platform behaviour of booting work on the LITTLE
        cluster; the governor's LBT is expected to move it if that is
        wrong.
        """
        clusters = sorted(self.chip.clusters, key=lambda c: c.max_supply_pus)
        core = self.placement.least_loaded_core(clusters[0].cores, self.now)
        self.placement.place(task, core)

    def _ensure_placed(self) -> None:
        for task in self.active_tasks():
            if not self.placement.is_placed(task):
                place_task = getattr(self.governor, "place_task", None)
                if place_task is not None:
                    place_task(self, task)
                if not self.placement.is_placed(task):
                    self._default_place(task)

    def _retire_inactive(self) -> None:
        for task in list(self.placement.all_tasks()):
            if not task.is_active(self.now):
                self.placement.remove(task)
                self._allocations.pop(task, None)
                self._weights.pop(task, None)
                self.load_tracker.forget(task)

    def _apply_power_gating(self) -> None:
        if not self.config.auto_power_gate:
            return
        for cluster in self.chip.clusters:
            has_tasks = bool(self.placement.tasks_on_cluster(cluster))
            held = cluster.cluster_id in self._gate_held_down
            # Route through the public control surface so tracers see
            # auto-gating too.
            if has_tasks and not cluster.powered and not held:
                self.power_up(cluster)
            elif not has_tasks and cluster.powered:
                self.power_down(cluster)

    def _dispatch(self) -> None:
        dt = self.config.dt
        now = self.now
        dispatched: set = set()
        for cluster in self.chip.clusters:
            for core in cluster.cores:
                mapped = [
                    t
                    for t in self.placement.tasks_on_core(core)
                    if t.is_active(now)
                ]
                runnable = [t for t in mapped if t.frozen_until <= now]
                frozen = [t for t in mapped if t.frozen_until > now]
                grants = compute_grants(
                    core.supply_pus, runnable, self._allocations, self._weights
                )
                consumed_total = 0.0
                for task in runnable:
                    granted = grants.get(task, 0.0)
                    consumed = task.consume(granted, cluster.core_type, now, dt)
                    consumed_total += consumed
                    demand = task.true_demand_pus(cluster.core_type, now)
                    self.load_tracker.update(task, granted, demand, dt)
                    dispatched.add(task)
                for task in frozen:
                    task.idle_tick(now, dt)
                    self.load_tracker.update(
                        task, 0.0, task.true_demand_pus(cluster.core_type, now), dt
                    )
                    dispatched.add(task)
                if core.supply_pus > 0.0:
                    core.utilization = min(1.0, consumed_total / core.supply_pus)
                else:
                    core.utilization = 0.0
        for task in self.active_tasks():
            if task not in dispatched:
                task.idle_tick(now, dt)

    def step(self) -> None:
        """Advance the simulation by one tick."""
        if not self._prepared:
            self._ensure_placed()
            self.governor.prepare(self)
            self._prepared = True
        self._retire_inactive()
        self._ensure_placed()
        self._apply_power_gating()
        self.governor.on_tick(self)
        self._apply_power_gating()
        self.chip.tick(self.config.dt)
        self._dispatch()
        sample = self.sensor.sample()
        self.energy.record(sample.cluster_power_w, self.config.dt)
        self.metrics.record(
            time_s=self.now,
            chip_power_w=sample.chip_power_w,
            cluster_power_w=sample.cluster_power_w,
            cluster_frequency_mhz=sample.cluster_frequency_mhz,
            tasks=self.active_tasks(),
        )
        self.now += self.config.dt
        self.tick_index += 1

    def run(self, duration_s: float) -> MetricsCollector:
        """Run for ``duration_s`` seconds of simulated time."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        end = self.now + duration_s
        # Half-tick tolerance avoids a float-accumulation extra tick.
        while self.now < end - 0.5 * self.config.dt:
            self.step()
        return self.metrics
