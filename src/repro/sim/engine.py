"""The discrete-time simulation engine.

Plays the role of the Linux kernel on the TC2 board: it owns the task-to-
core mapping, dispatches supply to tasks every tick, advances DVFS
transitions, samples the power sensors, and invokes the installed governor
(power-management policy) once per tick.  Governors mutate the system
exclusively through the engine's control surface (allocations, weights,
DVFS requests, migrations, power gating), mirroring how the paper's agents
act through nice values, cpufreq and sched_setaffinity.

The default tick is 10 ms -- the Linux scheduling epoch the paper quotes;
governors implement their own slower invocation periods on top (the PPM
bid round is ~32 ms).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence

from ..hw.energy import EnergyMeter
from ..hw.migration import MigrationCostModel
from ..hw.sensors import (
    PowerSensor,
    SensorReadError,
    SensorSample,
    ThermalSample,
    ThermalSensor,
)
from ..hw.thermal import ThermalConfig, ThermalCycleCounter, ThermalModel
from ..hw.topology import Chip, Cluster, Core
from ..tasks.task import Task
from .loadtracking import LoadTracker
from .metrics import MetricsCollector
from .migration import MigrationManager, MigrationRecord
from .placement import Placement
from .scheduler import compute_grants


def derive_stream_seed(seed: Optional[int], stream: str) -> Optional[int]:
    """A per-stream sub-seed derived deterministically from ``seed``.

    Each stochastic component gets its own named stream, so adding a new
    randomised subsystem later cannot perturb the random numbers an
    existing one draws under the same engine seed.  ``None`` stays
    ``None`` (unseeded components remain unseeded).
    """
    if seed is None:
        return None
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Governor(Protocol):
    """A power-management policy driving the engine's control surface."""

    def prepare(self, sim: "Simulation") -> None:
        """Called once before the first tick (initial placement etc.)."""

    def on_tick(self, sim: "Simulation") -> None:
        """Called every tick before supply is dispatched."""


def default_engine() -> str:
    """The tick-loop implementation ``SimConfig`` defaults to.

    ``REPRO_ENGINE`` overrides the default process-wide; since engine
    choice changes no telemetry bit, tools that spawn subprocesses (the
    CI kill-resume drill, benchmark harnesses) use the variable to pick
    the loop under test without threading a flag through every layer.
    Invalid values are rejected by ``SimConfig.__post_init__`` exactly
    like an invalid explicit argument.
    """
    return os.environ.get("REPRO_ENGINE", "columnar")


def default_sync_mode() -> str:
    """The columnar engine's write-through policy (``REPRO_COLUMNAR_SYNC``).

    ``"lazy"`` (default) keeps the NumPy columns authoritative on the
    steady-state hot path and materialises the ``Task`` object view only
    at observation boundaries (:meth:`Simulation.sync` barriers);
    ``"eager"`` restores per-tick write-through; ``"poison"`` is lazy
    plus a debug sentinel written to object attributes between barriers
    so unsynchronised reads raise instead of returning stale floats.
    The mode changes no observable value -- every barrier materialises
    the same floats eager write-through would have produced -- so it is
    not part of the checkpoint fingerprint.
    """
    mode = os.environ.get("REPRO_COLUMNAR_SYNC", "lazy")
    if mode not in ("lazy", "eager", "poison"):
        raise ValueError(
            'REPRO_COLUMNAR_SYNC must be "lazy", "eager" or "poison", '
            f"got {mode!r}"
        )
    return mode


@dataclass
class SimConfig:
    """Engine configuration.

    Attributes:
        dt: Tick length in seconds (default: the 10 ms Linux epoch).
        auto_power_gate: Power clusters down when they hold no tasks and
            back up when tasks are placed on them (paper section 2: "If
            there are no active tasks in an entire cluster, then we can
            power down that cluster").
        metrics_warmup_s: Prefix excluded from summary metrics.
        sensor_noise_std_w: Gaussian noise on power readings (0 = ideal).
        seed: Seed for the engine's stochastic parts; each component
            draws from its own stream via :func:`derive_stream_seed`.
        audit: Attach a non-strict :class:`~repro.core.audit.MarketAuditor`
            to the governor's market (when it has one) and surface the
            collected invariant violations in the metrics summary.
        thermal: Enable simulation-time thermal tracking (see
            :class:`~repro.hw.thermal.ThermalConfig`).  ``None`` (default)
            preserves pre-thermal behaviour exactly: no thermal state is
            created and telemetry is byte-identical to older runs.
        estimation: Enable estimated-power operation (see
            :class:`~repro.core.powerest.EstimationConfig`): synthetic
            performance counters feed an online power model whose output
            the governors consume instead of the metered reading.
            ``None`` (default) keeps runs byte-identical to older ones.
        engine: Tick-loop implementation.  ``"columnar"`` (default) runs
            the struct-of-arrays hot loop (:mod:`repro.sim.columnar`) --
            bit-identical telemetry, much faster at large task counts;
            ``"object"`` forces the reference per-object loop.  The
            columnar engine silently falls back to the object loop when
            numpy is unavailable.  Not part of the checkpoint
            fingerprint: snapshots restore into either engine.
    """

    dt: float = 0.01
    auto_power_gate: bool = True
    metrics_warmup_s: float = 2.0
    sensor_noise_std_w: float = 0.0
    seed: Optional[int] = None
    audit: bool = False
    thermal: Optional[ThermalConfig] = None
    estimation: Optional[object] = None
    engine: str = field(default_factory=lambda: default_engine())

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.engine not in ("columnar", "object"):
            raise ValueError('engine must be "columnar" or "object"')
        if self.metrics_warmup_s < 0:
            raise ValueError("metrics_warmup_s must be non-negative")
        if self.sensor_noise_std_w < 0:
            raise ValueError("sensor_noise_std_w must be non-negative")
        if self.thermal is not None and not isinstance(self.thermal, ThermalConfig):
            raise ValueError("thermal must be a ThermalConfig or None")
        if self.estimation is not None:
            # Local import: the engine must not import repro.core at the
            # top (repro.core imports this module at package load).
            from ..core.powerest import EstimationConfig

            if not isinstance(self.estimation, EstimationConfig):
                raise ValueError("estimation must be an EstimationConfig or None")


class Simulation:
    """One experiment: a chip, a task set and a governor, advanced in ticks."""

    def __new__(
        cls,
        chip: Optional[Chip] = None,
        tasks: Optional[Sequence[Task]] = None,
        governor: Optional[Governor] = None,
        config: Optional[SimConfig] = None,
        migration_cost_model: Optional[MigrationCostModel] = None,
    ) -> "Simulation":
        # Engine dispatch: Simulation(...) with engine="columnar" (the
        # default) transparently constructs the columnar subclass, so
        # every existing call site gets the fast loop without changes.
        # ``chip is not None`` keeps no-arg construction (deepcopy,
        # pickling) on the class that was asked for.
        if cls is Simulation and chip is not None:
            if config is None or config.engine == "columnar":
                from .columnar import AVAILABLE as _columnar_available
                from .columnar import ColumnarSimulation

                if _columnar_available:
                    return super().__new__(ColumnarSimulation)
        return super().__new__(cls)

    def __init__(
        self,
        chip: Chip,
        tasks: Sequence[Task],
        governor: Governor,
        config: Optional[SimConfig] = None,
        migration_cost_model: Optional[MigrationCostModel] = None,
    ):
        self.chip = chip
        self.tasks: List[Task] = list(tasks)
        self.governor = governor
        self.config = config or SimConfig()
        self.placement = Placement(chip)
        self.migrations = MigrationManager(
            placement=self.placement,
            cost_model=migration_cost_model or MigrationCostModel(),
        )
        self.load_tracker = LoadTracker()
        self.sensor = PowerSensor(
            chip,
            noise_std_w=self.config.sensor_noise_std_w,
            seed=derive_stream_seed(self.config.seed, "power-sensor-noise"),
        )
        self.energy = EnergyMeter()
        self.metrics = MetricsCollector(warmup_s=self.config.metrics_warmup_s)
        self.now: float = 0.0
        self.tick_index: int = 0
        self._allocations: Dict[Task, float] = {}
        self._weights: Dict[Task, float] = {}
        self._prepared = False
        # Per-tick cache of the active task list.  Activity only depends
        # on ``now``, which is constant within a tick, so every consumer
        # of ``active_tasks`` inside one tick shares a single scan.
        self._active_cache_now: Optional[float] = None
        self._active_cache: List[Task] = []
        #: Whether any task can ever retire (finite duration); with only
        #: unbounded tasks the per-tick retirement scan is skipped.
        self._any_finite_task = any(t.duration is not None for t in self.tasks)
        self._gate_held_down: set = set()
        self._offline: set = set()
        self._last_sensor_sample: Optional[SensorSample] = None
        #: Failed sensor reads substituted with the last good sample.
        self.sensor_read_failures: int = 0
        #: Migrations refused (offline destination or injected fault).
        self.failed_migrations: int = 0
        self.auditor = None
        self._last_audited_round: object = None
        #: Optional :class:`repro.checkpoint.CheckpointManager`, invoked
        #: at the end of every tick; ``None`` disables checkpointing.
        self.checkpointer = None
        #: Optional :class:`repro.core.admission.OverloadManager`, polled
        #: at the top of every tick for open-ended task arrivals; ``None``
        #: keeps the task population fixed (the paper's setting).
        self.arrivals = None
        #: Per-cluster V-F level ceilings (thermal throttling); requests
        #: above a ceiling are clamped to it, like hardware throttling.
        self._level_ceiling: Dict[str, int] = {}
        # -- simulation-time thermals (None unless config.thermal set) --
        self.thermal: Optional[ThermalModel] = None
        self.thermal_sensor: Optional[ThermalSensor] = None
        self.thermal_supervisor = None
        self.cycle_counters: Dict[str, ThermalCycleCounter] = {}
        #: Seconds any cluster's true temperature exceeded ``tcrit_c``.
        self.time_over_tcrit_s: float = 0.0
        #: Failed thermal reads substituted with the last good sample.
        self.thermal_read_failures: int = 0
        self._last_thermal_sample: Optional[ThermalSample] = None
        tcfg = self.config.thermal
        if tcfg is not None:
            cluster_ids = [c.cluster_id for c in chip.clusters]
            self.thermal = ThermalModel(cluster_ids, params=tcfg.params)
            self.thermal_sensor = ThermalSensor(
                self.thermal,
                noise_std_c=tcfg.sensor_noise_std_c,
                seed=derive_stream_seed(self.config.seed, "thermal-sensor-noise"),
            )
            self.cycle_counters = {
                cid: ThermalCycleCounter(tcfg.cycle_threshold_k)
                for cid in cluster_ids
            }
            if tcfg.protection is not None:
                # Local import: repro.core imports this module at package
                # load, so the engine must not import repro.core at the top.
                from ..core.resilience import ThermalSupervisor

                self.thermal_supervisor = ThermalSupervisor(
                    tcfg.protection, tcrit_c=tcfg.tcrit_c
                )
        # -- estimated-power mode (None unless config.estimation set) --
        #: Optional :class:`repro.core.powerest.EstimationManager`; when
        #: set, governors consume its estimated sample via
        #: :meth:`last_power_sample` instead of the metered reading.
        self.estimation = None
        self._estimated_sample: Optional[SensorSample] = None
        ecfg = self.config.estimation
        if ecfg is not None:
            from ..core.powerest import EstimationManager  # local: cycle

            self.estimation = EstimationManager(
                chip, ecfg, derive_stream_seed(self.config.seed, "perf-counters")
            )

    # ------------------------------------------------------------------
    # Control surface used by governors
    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        return self.config.dt

    def active_tasks(self) -> List[Task]:
        """Tasks alive at the current time."""
        return list(self._active_now())

    def _active_now(self) -> List[Task]:
        """The cached active-task list for this tick (do not mutate)."""
        if self._active_cache_now != self.now:
            now = self.now
            self._active_cache = [t for t in self.tasks if t.is_active(now)]
            self._active_cache_now = now
        return self._active_cache

    def invalidate_task_cache(self) -> None:
        """Drop per-tick task caches after out-of-band task mutation.

        Checkpoint restore and scenario drivers that edit task start or
        duration fields mid-run must call this so the engine re-scans.
        """
        self._active_cache_now = None
        self._any_finite_task = any(t.duration is not None for t in self.tasks)

    def sync(self) -> None:
        """Materialise the object view of any column-resident hot state.

        The reference engine mutates ``Task`` objects directly, so this
        is a no-op; the columnar engine overrides it as the observation
        barrier that flushes dirty columns back to object attributes.
        Every out-of-band reader of per-task hot state (governor hooks,
        fault windows, audits, checkpoints, telemetry fallbacks) calls
        this before touching ``Task`` attributes.
        """

    def set_allocation(self, task: Task, pus: float) -> None:
        """Pin an explicit supply allocation for ``task`` (PPM market)."""
        self._allocations[task] = max(0.0, pus)

    def set_allocations(self, pairs: Dict[Task, float]) -> None:
        """Bulk form of :meth:`set_allocation` (one market round's grants).

        Insertion order and clamping match a :meth:`set_allocation` loop
        over ``pairs.items()`` exactly.
        """
        self._allocations.update(
            (task, max(0.0, pus)) for task, pus in pairs.items()
        )

    def clear_allocation(self, task: Task) -> None:
        self._allocations.pop(task, None)

    def clear_allocations(self) -> None:
        self._allocations.clear()

    def set_weight(self, task: Task, weight: float) -> None:
        """Set the fair-share weight for ``task`` (nice-value analogue)."""
        self._weights[task] = max(0.0, weight)

    def weight_of(self, task: Task) -> float:
        return self._weights.get(task, 1.0)

    def allocation_of(self, task: Task) -> Optional[float]:
        return self._allocations.get(task)

    def request_level(self, cluster: Cluster, index: int) -> bool:
        """Ask a cluster's regulator for V-F level ``index`` (cpufreq).

        Requests above an active thermal ceiling are clamped to it, the
        way hardware throttling silently caps cpufreq: every governor
        (PPM, HPM, HL, ondemand, PID-driven) goes through this method, so
        none of them can out-vote the thermal supervisor.
        """
        ceiling = self._level_ceiling.get(cluster.cluster_id)
        if ceiling is not None and index > ceiling:
            index = ceiling
        return cluster.regulator.request(index)

    def step_level(self, cluster: Cluster, delta: int) -> bool:
        index = cluster.vf_table.clamp_index(
            cluster.regulator.target_index + delta
        )
        return self.request_level(cluster, index)

    # ------------------------------------------------------------------
    # V-F ceilings (thermal throttling surface)
    # ------------------------------------------------------------------
    def set_level_ceiling(self, cluster: Cluster, index: int) -> None:
        """Cap the cluster's V-F level at ``index``; forces down if above.

        Actuates the regulator directly (not through the governor-facing
        ``request_level`` seam), mirroring hardware thermal throttling
        which sits below a possibly-faulty cpufreq write path.
        """
        index = cluster.vf_table.clamp_index(index)
        self._level_ceiling[cluster.cluster_id] = index
        if cluster.regulator.target_index > index:
            cluster.regulator.request(index)

    def clear_level_ceiling(self, cluster: Cluster) -> None:
        self._level_ceiling.pop(cluster.cluster_id, None)

    def level_ceiling_of(self, cluster_id: str) -> Optional[int]:
        """Active V-F ceiling for ``cluster_id``, or ``None`` (uncapped)."""
        return self._level_ceiling.get(cluster_id)

    def place(self, task: Task, core: Core) -> None:
        """Initial (cost-free) placement of a task onto a core."""
        if core.cluster.cluster_id in self._offline:
            raise ValueError(
                f"cannot place {task.name}: cluster "
                f"{core.cluster.cluster_id} is hot-unplugged"
            )
        self.placement.place(task, core)

    def migrate(self, task: Task, destination: Core) -> MigrationRecord:
        """Migrate a task, charging the measured cost.

        A migration onto a hot-unplugged cluster fails without moving the
        task (``record.failed`` is set), the way ``sched_setaffinity``
        refuses an offlined CPU; governors observe the placement is
        unchanged and retry or re-plan.
        """
        if destination.cluster.cluster_id in self._offline:
            return self.failed_migration_record(task, destination)
        return self.migrations.migrate(task, destination, now=self.now)

    def failed_migration_record(self, task: Task, destination: Core) -> MigrationRecord:
        """Account a migration that failed to move ``task`` (no cost)."""
        self.failed_migrations += 1
        source = self.placement.core_of(task)
        return MigrationRecord(
            time_s=self.now,
            task_name=task.name,
            source_core=source.core_id if source is not None else "?",
            destination_core=destination.core_id,
            inter_cluster=(
                source is None or source.cluster is not destination.cluster
            ),
            cost_s=0.0,
            failed=True,
        )

    def power_down(self, cluster: Cluster, hold: bool = False) -> None:
        """Gate a cluster off.  ``hold`` keeps it off even with tasks mapped."""
        cluster.power_down()
        if hold:
            self._gate_held_down.add(cluster.cluster_id)

    def power_up(self, cluster: Cluster) -> None:
        if cluster.cluster_id in self._offline:
            return  # hot-unplugged hardware cannot be powered back up
        self._gate_held_down.discard(cluster.cluster_id)
        cluster.power_up()

    # ------------------------------------------------------------------
    # Hotplug (fault surface)
    # ------------------------------------------------------------------
    def hotplug_out(self, cluster: Cluster) -> List[Task]:
        """Hot-unplug ``cluster``: evict its tasks and gate it off.

        The displaced tasks are re-placed on the remaining clusters at the
        start of the next tick (governor ``place_task`` hook first, then
        the default boot-cluster rule).  Returns the displaced tasks.
        """
        if cluster.cluster_id in self._offline:
            return []
        displaced = self.placement.tasks_on_cluster(cluster)
        for task in displaced:
            self.placement.remove(task)
        self.power_down(cluster, hold=True)
        self._offline.add(cluster.cluster_id)
        return displaced

    def hotplug_in(self, cluster: Cluster) -> None:
        """Replug a hot-unplugged cluster (stays gated until tasks arrive)."""
        if cluster.cluster_id not in self._offline:
            return
        self._offline.discard(cluster.cluster_id)
        self._gate_held_down.discard(cluster.cluster_id)

    @property
    def offline_clusters(self) -> FrozenSet[str]:
        """Ids of clusters currently hot-unplugged."""
        return frozenset(self._offline)

    def online_clusters(self) -> List[Cluster]:
        return [
            c for c in self.chip.clusters if c.cluster_id not in self._offline
        ]

    def last_power_sample(self) -> Optional[SensorSample]:
        """The power sample governors should act on.

        In estimated-power operation this is the estimation pipeline's
        (supervised) output; otherwise the metered reading.
        """
        if self._estimated_sample is not None:
            return self._estimated_sample
        return self.metered_power_sample()

    def metered_power_sample(self) -> Optional[SensorSample]:
        """Most recent metered (possibly fault-affected) power reading."""
        if self._last_sensor_sample is not None:
            return self._last_sensor_sample
        return self.sensor.last_sample

    def last_thermal_sample(self) -> Optional[ThermalSample]:
        """Most recent (possibly fault-affected) thermal reading."""
        if self._last_thermal_sample is not None:
            return self._last_thermal_sample
        if self.thermal_sensor is not None:
            return self.thermal_sensor.last_sample
        return None

    # ------------------------------------------------------------------
    # Engine loop
    # ------------------------------------------------------------------
    def _default_place(
        self, task: Task, cache: Optional[Dict[str, float]] = None
    ) -> None:
        """Place a new task on the least-loaded core of the slowest cluster.

        Matches the platform behaviour of booting work on the LITTLE
        cluster; the governor's LBT is expected to move it if that is
        wrong.  Hot-unplugged clusters are skipped; with every cluster
        offline the task stays unplaced (and idles) until one returns.
        """
        clusters = sorted(self.online_clusters(), key=lambda c: c.max_supply_pus)
        if not clusters:
            return
        core = self.placement.least_loaded_core(
            clusters[0].cores, self.now, cache=cache
        )
        self.placement.place(task, core)
        if cache is not None:
            cache[core.core_id] = cache[core.core_id] + task.true_demand_pus(
                core.cluster.core_type, self.now
            )

    def _ensure_placed(self) -> None:
        # Per-batch load memo: placing N tasks at one instant costs O(N)
        # demand evaluations instead of O(N^2) (see least_loaded_core).
        cache: Dict[str, float] = {}
        for task in self._active_now():
            if not self.placement.is_placed(task):
                place_task = getattr(self.governor, "place_task", None)
                if place_task is not None:
                    try:
                        place_task(self, task)
                    except ValueError:
                        pass  # governor chose offline hardware; use default
                    if self.placement.is_placed(task):
                        # Placed outside the cache's bookkeeping; evict so
                        # the next lookup recomputes that core fresh.
                        core = self.placement.core_of(task)
                        if core is not None:
                            cache.pop(core.core_id, None)
                        continue
                self._default_place(task, cache)

    def _retire_inactive(self) -> None:
        if not self._any_finite_task:
            return  # nothing can ever retire; skip the scan
        now = self.now
        retired = [
            task for task in self.placement.all_tasks() if not task.is_active(now)
        ]
        for task in retired:
            self.placement.remove(task)
            self._allocations.pop(task, None)
            self._weights.pop(task, None)
            self.load_tracker.forget(task)

    def _apply_power_gating(self) -> None:
        if not self.config.auto_power_gate:
            return
        for cluster in self.chip.clusters:
            if cluster.cluster_id in self._offline:
                continue
            has_tasks = self.placement.has_tasks(cluster)
            held = cluster.cluster_id in self._gate_held_down
            # Route through the public control surface so tracers see
            # auto-gating too.
            if has_tasks and not cluster.powered and not held:
                self.power_up(cluster)
            elif not has_tasks and cluster.powered:
                self.power_down(cluster)

    def _dispatch(self) -> None:
        dt = self.config.dt
        now = self.now
        allocations = self._allocations
        weights = self._weights
        tracker = self.load_tracker
        placement = self.placement
        inactive_mapped = False
        for cluster in self.chip.clusters:
            core_type = cluster.core_type
            for core in cluster.cores:
                mapped = placement.iter_tasks_on_core(core)
                if not mapped:
                    core.utilization = 0.0
                    continue
                # Fast path: every mapped task runnable (active, not
                # frozen by a migration) -- the common no-migration tick.
                runnable = mapped
                frozen: List[Task] = ()
                for t in mapped:
                    if not t.is_active(now) or t.frozen_until > now:
                        active_mapped = [t for t in mapped if t.is_active(now)]
                        if len(active_mapped) != len(mapped):
                            inactive_mapped = True
                        runnable = [t for t in active_mapped if t.frozen_until <= now]
                        frozen = [t for t in active_mapped if t.frozen_until > now]
                        break
                grants = compute_grants(
                    core.supply_pus, runnable, allocations, weights
                )
                consumed_total = 0.0
                for task in runnable:
                    granted = grants.get(task, 0.0)
                    consumed_total += task.consume(granted, core_type, now, dt)
                    # ``consume`` just computed the task's true demand;
                    # reuse it instead of re-evaluating the phase trace.
                    tracker.update(task, granted, task.last_demand_pus, dt)
                for task in frozen:
                    task.idle_tick(now, dt)
                    tracker.update(
                        task, 0.0, task.true_demand_pus(core_type, now), dt
                    )
                if core.supply_pus > 0.0:
                    core.utilization = min(1.0, consumed_total / core.supply_pus)
                else:
                    core.utilization = 0.0
        # Active tasks not mapped to any core (all clusters offline, or
        # evicted by a mid-tick hotplug) idle in place.  Every *active*
        # mapped task was dispatched above, so the placement map doubles
        # as the dispatch set and the common all-placed tick skips the
        # scan entirely.
        active = self._active_now()
        if inactive_mapped or placement.placed_count() != len(active):
            for task in active:
                if not placement.is_placed(task):
                    task.idle_tick(now, dt)

    def _read_sensor(self) -> SensorSample:
        """Sample power, substituting the last good sample on read failure.

        A failed hwmon read must not stall the kernel's accounting: the
        engine keeps running on the stale sample (or an all-zero one
        before the first success) and counts the failure.  Governor-side
        staleness handling lives in :mod:`repro.core.resilience`.
        """
        try:
            sample = self.sensor.sample()
        except SensorReadError:
            self.sensor_read_failures += 1
            sample = self._last_sensor_sample or SensorSample(
                chip_power_w=0.0,
                cluster_power_w={c.cluster_id: 0.0 for c in self.chip.clusters},
                cluster_frequency_mhz={
                    c.cluster_id: c.frequency_mhz for c in self.chip.clusters
                },
                cluster_voltage_v={c.cluster_id: 0.0 for c in self.chip.clusters},
            )
        self._last_sensor_sample = sample
        return sample

    def _step_thermal(self) -> Optional[Dict[str, float]]:
        """Advance thermals one tick; returns the true temperatures.

        Physics runs on the chip's *true* per-cluster power (a stuck or
        noisy power sensor cannot cool the silicon), while the supervisor
        acts on the *sensed* temperatures -- so thermal sensor faults make
        the protection blind exactly the way they would on hardware.
        Metrics record the true temperatures.
        """
        if self.thermal is None:
            return None
        dt = self.config.dt
        true_powers = {
            c.cluster_id: self.chip.cluster_power_w(c.cluster_id)
            for c in self.chip.clusters
        }
        temps = self.thermal.step(true_powers, dt)
        for cluster_id, counter in self.cycle_counters.items():
            counter.update(temps[cluster_id])
        if max(temps.values()) > self.config.thermal.tcrit_c:
            self.time_over_tcrit_s += dt
        try:
            sample = self.thermal_sensor.sample()
        except SensorReadError:
            self.thermal_read_failures += 1
            sample = self._last_thermal_sample or ThermalSample(
                cluster_temperature_c=dict(temps)
            )
        self._last_thermal_sample = sample
        if self.thermal_supervisor is not None:
            self.thermal_supervisor.on_tick(self, sample)
        return temps

    def _maybe_attach_auditor(self) -> None:
        if not self.config.audit:
            return
        market = getattr(self.governor, "market", None)
        if market is None:
            return
        from ..core.audit import MarketAuditor  # local: avoids import cycle

        self.auditor = MarketAuditor(market, strict=False)

    def _run_audit(self) -> None:
        """Audit the governor's market once per completed bid round."""
        if self.auditor is None:
            return
        last_round = getattr(self.governor, "last_round", None)
        if last_round is None or last_round is self._last_audited_round:
            return
        self._last_audited_round = last_round
        report = self.auditor.audit_now()
        if report.violations:
            self.metrics.audit_violations.extend(
                f"t={self.now:.3f}: {violation}" for violation in report.violations
            )

    def step(self) -> None:
        """Advance the simulation by one tick."""
        if not self._prepared:
            self._ensure_placed()
            self.governor.prepare(self)
            self._maybe_attach_auditor()
            self._prepared = True
        if self.arrivals is not None:
            self.arrivals.on_tick(self)
        self._retire_inactive()
        self._ensure_placed()
        self._apply_power_gating()
        self.governor.on_tick(self)
        self._run_audit()
        self._apply_power_gating()
        self.chip.tick(self.config.dt)
        self._dispatch()
        thermal_temps = self._step_thermal()
        sample = self._read_sensor()
        estimated_w: Optional[float] = None
        if self.estimation is not None:
            # Runs after the metered read so the estimator trains on this
            # tick's (counters, metered power) pair; governors see the
            # served sample on the next tick via ``last_power_sample``.
            served = self.estimation.on_tick(self, sample)
            self._estimated_sample = served
            estimated_w = served.chip_power_w
        self.energy.record(sample.cluster_power_w, self.config.dt)
        self.metrics.record(
            time_s=self.now,
            chip_power_w=sample.chip_power_w,
            cluster_power_w=sample.cluster_power_w,
            cluster_frequency_mhz=sample.cluster_frequency_mhz,
            tasks=self._active_now(),
            cluster_temperature_c=thermal_temps,
            estimated_chip_power_w=estimated_w,
        )
        self.now += self.config.dt
        self.tick_index += 1
        if self.checkpointer is not None:
            self.checkpointer.on_tick(self)

    def run(self, duration_s: float) -> MetricsCollector:
        """Run for ``duration_s`` seconds of simulated time."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        end = self.now + duration_s
        # Half-tick tolerance avoids a float-accumulation extra tick.
        while self.now < end - 0.5 * self.config.dt:
            self.step()
        # End-of-run barrier: callers inspect Task attributes and the
        # load tracker after run() returns, so the object view must be
        # current even under lazy columnar synchronisation.
        self.sync()
        return self.metrics
