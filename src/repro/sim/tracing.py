"""Structured event tracing for simulations.

The kernel modules of the paper were debugged through ftrace-style event
logs; the simulator offers the same visibility: a typed event stream of
everything that changes system state (V-F transitions, migrations, power
gating, chip power-state changes), queryable and exportable as JSON
lines.  Tracing is opt-in -- attach a :class:`Tracer` to a simulation
and it hooks the relevant notification points.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One state-changing occurrence."""

    time_s: float
    kind: str  #: "dvfs" | "migration" | "power_gate" | "chip_state" | custom
    subject: str  #: cluster id, task name, ...
    detail: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


class Tracer:
    """Collects :class:`TraceEvent` instances with bounded memory.

    Args:
        capacity: Maximum retained events; the oldest are dropped first
            (a long simulation can emit millions of events).
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    # -- recording ------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if len(self._events) >= self._capacity:
            self._events.pop(0)
            self.dropped += 1
        self._events.append(event)

    def record(self, time_s: float, kind: str, subject: str, **detail: object) -> None:
        self.emit(TraceEvent(time_s=time_s, kind=kind, subject=subject, detail=detail))

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        since: float = float("-inf"),
    ) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
            and e.time_s >= since
        ]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.events(kind=kind))

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)

    def write_jsonl(self, path: str) -> int:
        """Write all events to ``path``; returns the event count."""
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(self._events)


def attach_tracer(sim, tracer: Optional[Tracer] = None) -> Tracer:
    """Instrument a :class:`~repro.sim.engine.Simulation` with a tracer.

    Wraps the simulation's mutation points (migration, DVFS requests,
    power gating) so every call emits an event.  Returns the tracer.
    Idempotent-ish: attaching twice double-reports; attach once.
    """
    tracer = tracer or Tracer()

    original_migrate = sim.migrate

    def traced_migrate(task, destination):
        record = original_migrate(task, destination)
        tracer.record(
            sim.now,
            "migration",
            task.name,
            source=record.source_core,
            destination=record.destination_core,
            inter_cluster=record.inter_cluster,
            cost_s=record.cost_s,
        )
        return record

    original_request = sim.request_level

    def traced_request(cluster, index):
        started = original_request(cluster, index)
        if started:
            tracer.record(
                sim.now,
                "dvfs",
                cluster.cluster_id,
                from_index=cluster.regulator.level_index,
                to_index=cluster.regulator.target_index,
                to_mhz=cluster.vf_table[cluster.regulator.target_index].frequency_mhz,
            )
        return started

    original_down = sim.power_down
    original_up = sim.power_up

    def traced_down(cluster, hold=False):
        if cluster.powered:
            tracer.record(sim.now, "power_gate", cluster.cluster_id, powered=False, hold=hold)
        return original_down(cluster, hold=hold)

    def traced_up(cluster):
        if not cluster.powered:
            tracer.record(sim.now, "power_gate", cluster.cluster_id, powered=True)
        return original_up(cluster)

    sim.migrate = traced_migrate
    sim.request_level = traced_request
    sim.power_down = traced_down
    sim.power_up = traced_up
    sim.tracer = tracer
    return tracer
