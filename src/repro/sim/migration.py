"""Migration execution with measured costs.

On the real platform migrations go through ``sched_setaffinity`` and cost
between ~50 us (within a cluster) and ~3.8 ms (big -> LITTLE); the paper's
LBT invocation periods are chosen around exactly these costs.  The manager
applies a placement change and freezes the task for the modelled cost, so
migrating too eagerly shows up as lost supply -- the same trade-off the
real system faces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hw.migration import MigrationCostModel
from ..hw.topology import Core
from ..tasks.task import Task
from .placement import Placement


@dataclass
class MigrationRecord:
    """One completed migration, for tracing and statistics."""

    time_s: float
    task_name: str
    source_core: str
    destination_core: str
    inter_cluster: bool
    cost_s: float
    #: The request did not move the task (offline destination or an
    #: injected actuation fault); the placement is unchanged.
    failed: bool = False


@dataclass
class MigrationManager:
    """Applies migrations onto a :class:`Placement`, charging costs."""

    placement: Placement
    cost_model: MigrationCostModel = field(default_factory=MigrationCostModel)
    history: List[MigrationRecord] = field(default_factory=list)

    def migrate(self, task: Task, destination: Core, now: float) -> MigrationRecord:
        """Move ``task`` to ``destination`` at time ``now``.

        The task is frozen (receives no supply) for the migration cost.
        Migrating a task onto its current core is rejected: the callers
        (LBT, baselines) are expected to filter no-op moves.
        """
        source = self.placement.core_of(task)
        if source is None:
            raise ValueError(f"{task.name} is not placed; use Placement.place")
        if source is destination:
            raise ValueError(f"{task.name} is already on {destination.core_id}")
        cost = self.cost_model.cost_s(source.cluster, destination.cluster)
        inter = self.cost_model.is_inter_cluster(source.cluster, destination.cluster)
        self.placement.place(task, destination)
        task.frozen_until = max(task.frozen_until, now + cost)
        task.migrations += 1
        record = MigrationRecord(
            time_s=now,
            task_name=task.name,
            source_core=source.core_id,
            destination_core=destination.core_id,
            inter_cluster=inter,
            cost_s=cost,
        )
        self.history.append(record)
        return record

    def counts(self) -> Tuple[int, int]:
        """(intra-cluster, inter-cluster) migration counts so far."""
        inter = sum(1 for r in self.history if r.inter_cluster)
        return len(self.history) - inter, inter

    def counts_by_task(self) -> Dict[str, int]:
        by_task: Dict[str, int] = {}
        for record in self.history:
            by_task[record.task_name] = by_task.get(record.task_name, 0) + 1
        return by_task
