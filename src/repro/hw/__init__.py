"""Hardware substrate: heterogeneous multi-core chip model.

Simulated stand-in for the paper's ARM Versatile Express TC2 board --
clusters of identical cores with per-cluster DVFS, an analytic power model
calibrated to the board's measured envelope, hwmon-style sensors, energy
meters, and the measured migration-cost model.
"""

from .calibration import CalibrationTarget, energy_per_pu_w, fit_power_params, verify_calibration
from .counters import (
    COUNTER_NAMES,
    CounterConfig,
    CounterEmitter,
    CounterSample,
)
from .dvfs import DVFSRegulator
from .energy import EnergyMeter
from .migration import TC2_MIGRATION_COSTS, CostRange, MigrationCostModel
from .power import CorePowerParams, PowerModel
from .presets import (
    A7_POWER,
    A15_POWER,
    TC2_CAPPED_TDP_W,
    TC2_TDP_W,
    a7_vf_table,
    a15_vf_table,
    odroid_xu3_chip,
    synthetic_chip,
    tc2_chip,
)
from .sensors import PowerSensor, SensorSample, ThermalSample, ThermalSensor
from .thermal import (
    ThermalConfig,
    ThermalCycleCounter,
    ThermalModel,
    ThermalParams,
    ThermalProtectionConfig,
    track_thermals,
)
from .topology import Chip, Cluster, Core
from .vf import VFLevel, VFTable, vf_table_from_pairs

__all__ = [
    "A7_POWER",
    "A15_POWER",
    "COUNTER_NAMES",
    "CalibrationTarget",
    "Chip",
    "Cluster",
    "Core",
    "CorePowerParams",
    "CounterConfig",
    "CounterEmitter",
    "CounterSample",
    "CostRange",
    "DVFSRegulator",
    "EnergyMeter",
    "MigrationCostModel",
    "PowerModel",
    "PowerSensor",
    "SensorSample",
    "ThermalConfig",
    "ThermalCycleCounter",
    "ThermalModel",
    "ThermalParams",
    "ThermalProtectionConfig",
    "ThermalSample",
    "ThermalSensor",
    "TC2_CAPPED_TDP_W",
    "TC2_MIGRATION_COSTS",
    "TC2_TDP_W",
    "VFLevel",
    "VFTable",
    "a7_vf_table",
    "energy_per_pu_w",
    "fit_power_params",
    "a15_vf_table",
    "odroid_xu3_chip",
    "synthetic_chip",
    "tc2_chip",
    "track_thermals",
    "verify_calibration",
    "vf_table_from_pairs",
]
