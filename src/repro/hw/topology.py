"""Chip topology: cores grouped into V-F clusters.

Mirrors the paper's architecture model (section 2): a set of cores ``C``
grouped into voltage-frequency clusters ``V``; all cores of a cluster are
micro-architecturally identical and run at the cluster's single V-F level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .dvfs import DVFSRegulator
from .power import CorePowerParams, PowerModel
from .vf import VFLevel, VFTable


@dataclass(eq=False)
class Core:
    """One physical core.

    Identity-based equality/hash: cores are unique physical entities and
    are used as dictionary keys by governors.

    The core's supply is entirely determined by its cluster's V-F level;
    the simulator writes back the observed ``utilization`` (fraction of the
    delivered cycles consumed by tasks) every tick, which the power model
    and the ondemand-style governors read.
    """

    core_id: str
    cluster: "Cluster"
    utilization: float = 0.0

    @property
    def supply_pus(self) -> float:
        """Current supply of this core in PUs (0 when cluster is off)."""
        cluster = self.cluster
        if not cluster.powered:
            return 0.0
        # Inlined cluster.level.supply_pus: this sits on the dispatch and
        # market hot paths, so skip the two intermediate property hops.
        return cluster.vf_table[cluster.regulator.level_index].frequency_mhz

    @property
    def max_supply_pus(self) -> float:
        """Supply at the cluster's maximum frequency."""
        return self.cluster.vf_table.max_level.supply_pus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Core({self.core_id})"


class Cluster:
    """A voltage-frequency cluster of identical cores.

    Owns the V-F table, the DVFS regulator and the power-gating state.
    """

    def __init__(
        self,
        cluster_id: str,
        core_type: str,
        n_cores: int,
        vf_table: VFTable,
        power_params: CorePowerParams,
        transition_latency_s: float = 0.001,
        initial_level_index: Optional[int] = None,
    ):
        if n_cores < 1:
            raise ValueError("a cluster needs at least one core")
        self.cluster_id = cluster_id
        self.core_type = core_type
        self.vf_table = vf_table
        self.power_params = power_params
        start = 0 if initial_level_index is None else vf_table.clamp_index(initial_level_index)
        self.regulator = DVFSRegulator(
            table=vf_table, level_index=start, transition_latency_s=transition_latency_s
        )
        self.powered = True
        #: Multiplier on the cluster's true power draw (silicon aging /
        #: drift faults); 1.0 means the analytic model is exact.
        self.drift_factor = 1.0
        self.cores: List[Core] = [
            Core(core_id=f"{cluster_id}.{i}", cluster=self) for i in range(n_cores)
        ]

    # -- operating point ----------------------------------------------------------
    @property
    def level_index(self) -> int:
        return self.regulator.level_index

    @property
    def level(self) -> VFLevel:
        return self.vf_table[self.regulator.level_index]

    @property
    def frequency_mhz(self) -> float:
        return self.level.frequency_mhz if self.powered else 0.0

    @property
    def supply_pus(self) -> float:
        """Per-core supply of this cluster (paper's ``S_v``)."""
        if not self.powered:
            return 0.0
        return self.vf_table[self.regulator.level_index].frequency_mhz

    @property
    def max_supply_pus(self) -> float:
        return self.vf_table.max_level.supply_pus

    @property
    def capacity_pus(self) -> float:
        """Aggregate supply across all cores of the cluster."""
        return self.supply_pus * len(self.cores)

    @property
    def max_capacity_pus(self) -> float:
        return self.max_supply_pus * len(self.cores)

    # -- control ------------------------------------------------------------------
    def power_down(self) -> None:
        """Gate the cluster off: zero supply and zero power."""
        self.powered = False
        for core in self.cores:
            core.utilization = 0.0

    def power_up(self) -> None:
        self.powered = True

    def power_w(self, model: PowerModel) -> float:
        """Current cluster power under ``model`` (paper's ``W_v``)."""
        watts = model.cluster_power_w(
            self.power_params,
            self.level,
            [c.utilization for c in self.cores],
            powered=self.powered,
        )
        # Branch kept off the hot path: with no drift fault active the
        # returned floats are bit-identical to the pre-drift code.
        if self.drift_factor != 1.0:
            watts *= self.drift_factor
        return watts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({self.cluster_id}, {self.core_type}x{len(self.cores)}, "
            f"{self.frequency_mhz:.0f}MHz)"
        )


class Chip:
    """The whole heterogeneous multi-core: a set of clusters.

    Provides the aggregate views the chip agent consumes: total power ``W``
    and the list of all cores/clusters.  Task placement lives in the
    simulator, not here -- the chip is pure hardware state.
    """

    def __init__(self, name: str, clusters: Sequence[Cluster], power_model: Optional[PowerModel] = None):
        if not clusters:
            raise ValueError("a chip needs at least one cluster")
        ids = [c.cluster_id for c in clusters]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate cluster ids")
        self.name = name
        self.clusters: List[Cluster] = list(clusters)
        self.power_model = power_model or PowerModel()
        self._clusters_by_id: Dict[str, Cluster] = {c.cluster_id: c for c in self.clusters}
        self._cores_by_id: Dict[str, Core] = {
            core.core_id: core for cluster in self.clusters for core in cluster.cores
        }

    # -- lookup -------------------------------------------------------------------
    def cluster(self, cluster_id: str) -> Cluster:
        return self._clusters_by_id[cluster_id]

    def core(self, core_id: str) -> Core:
        return self._cores_by_id[core_id]

    @property
    def cores(self) -> List[Core]:
        return [core for cluster in self.clusters for core in cluster.cores]

    def iter_cores(self) -> Iterator[Core]:
        for cluster in self.clusters:
            yield from cluster.cores

    # -- aggregates ---------------------------------------------------------------
    def total_power_w(self) -> float:
        """Chip power ``W`` = sum of cluster powers."""
        return sum(c.power_w(self.power_model) for c in self.clusters)

    def cluster_power_w(self, cluster_id: str) -> float:
        return self.cluster(cluster_id).power_w(self.power_model)

    def total_supply_pus(self) -> float:
        """Chip supply ``S`` = sum of per-cluster (per-core) supplies.

        Follows the paper's definition: the supply of a cluster is the
        supply of any one of its cores, and the chip supply is the sum of
        the cluster supplies.
        """
        return sum(c.supply_pus for c in self.clusters)

    def tick(self, dt: float) -> List[str]:
        """Advance all regulators; return ids of clusters whose V-F changed."""
        changed = []
        for cluster in self.clusters:
            if cluster.regulator.tick(dt):
                changed.append(cluster.cluster_id)
        return changed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Chip({self.name}, clusters={[c.cluster_id for c in self.clusters]})"
