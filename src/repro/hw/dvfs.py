"""Cluster-level DVFS regulator with transition latency.

On the TC2 platform the frequency can only be changed per cluster (all cores
of a cluster share one V-F regulator); the voltage for each frequency is set
automatically by the hardware.  Real regulators take a short, non-zero time
to re-lock the PLL and settle the voltage rail; during a transition the
paper freezes the market's bids until the new supply has been observed, so
the regulator exposes an explicit *in transition* state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .vf import VFTable


@dataclass
class DVFSRegulator:
    """Discrete-level frequency regulator for one cluster.

    The regulator tracks the applied level index and at most one pending
    request.  ``tick(dt)`` advances wall time; a pending request is applied
    once its transition latency has elapsed.

    Attributes:
        table: The cluster's V-F table.
        level_index: Currently applied level index.
        transition_latency_s: Time for a level change to take effect.
    """

    table: VFTable
    level_index: int = 0
    transition_latency_s: float = 0.001
    _pending_index: Optional[int] = field(default=None, repr=False)
    _pending_remaining_s: float = field(default=0.0, repr=False)
    transitions: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.level_index = self.table.clamp_index(self.level_index)

    @property
    def in_transition(self) -> bool:
        """True while a requested level change has not yet been applied."""
        return self._pending_index is not None

    @property
    def target_index(self) -> int:
        """The level the regulator is heading to (current if idle)."""
        return self._pending_index if self._pending_index is not None else self.level_index

    def request(self, index: int) -> bool:
        """Request a change to level ``index`` (clamped).

        Returns ``True`` if a new transition was started, ``False`` if the
        request is a no-op (already at/heading to that level).  A new
        request while in transition retargets the pending transition
        without restarting the latency clock, mirroring regulators that
        coalesce back-to-back requests.
        """
        index = self.table.clamp_index(index)
        if index == self.target_index:
            return False
        if self._pending_index is None:
            self._pending_remaining_s = self.transition_latency_s
        self._pending_index = index
        return True

    def step(self, delta: int) -> bool:
        """Request a move of ``delta`` levels relative to the target."""
        return self.request(self.target_index + delta)

    def tick(self, dt: float) -> bool:
        """Advance time by ``dt`` seconds; apply a due transition.

        Returns ``True`` exactly on the tick at which a transition
        completes, so observers (the cluster agent) can reset base prices.
        """
        if self._pending_index is None:
            return False
        self._pending_remaining_s -= dt
        if self._pending_remaining_s <= 0.0:
            self.level_index = self._pending_index
            self._pending_index = None
            self._pending_remaining_s = 0.0
            self.transitions += 1
            return True
        return False

    def force_level(self, index: int) -> None:
        """Immediately set the level, cancelling any pending transition."""
        self.level_index = self.table.clamp_index(index)
        self._pending_index = None
        self._pending_remaining_s = 0.0
