"""Ready-made chip configurations.

``tc2_chip()`` models the paper's evaluation platform: the ARM Versatile
Express TC2 CoreTile with a 2-core Cortex-A15 (big) cluster and a 3-core
Cortex-A7 (LITTLE) cluster.  Power calibration targets the figures the
paper quotes: observed maxima of ~6 W for the big cluster and ~2 W for the
LITTLE cluster, with a platform TDP of 8 W (section 5.3).

``synthetic_chip()`` builds arbitrary (clusters x cores) topologies for the
scalability study (Table 7), which emulates systems with up to 256 clusters
of 16 cores.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .power import CorePowerParams
from .topology import Chip, Cluster
from .vf import VFTable, vf_table_from_pairs

#: TC2 big-cluster (Cortex-A15) operating points: 500-1200 MHz.
A15_VF_POINTS = (
    (500.0, 0.85),
    (600.0, 0.88),
    (700.0, 0.92),
    (800.0, 0.95),
    (900.0, 1.00),
    (1000.0, 1.05),
    (1100.0, 1.12),
    (1200.0, 1.20),
)

#: TC2 LITTLE-cluster (Cortex-A7) operating points: 350-1000 MHz.
A7_VF_POINTS = (
    (350.0, 0.85),
    (400.0, 0.85),
    (500.0, 0.90),
    (600.0, 0.90),
    (700.0, 0.95),
    (800.0, 1.00),
    (900.0, 1.05),
    (1000.0, 1.05),
)

#: Cortex-A15 power calibration: 2 fully-loaded cores at 1200 MHz plus
#: uncore come to ~6 W.
A15_POWER = CorePowerParams(k_dyn=1.45e-3, k_static=0.333, uncore_w=0.2)

#: Cortex-A7 power calibration: 3 fully-loaded cores at 1000 MHz plus
#: uncore come to ~2 W.
A7_POWER = CorePowerParams(k_dyn=4.5e-4, k_static=0.13, uncore_w=0.11)

#: Paper constants (section 5.3): platform TDP and the capped budget used
#: in the power-constrained comparative study.
TC2_TDP_W = 8.0
TC2_CAPPED_TDP_W = 4.0


def a15_vf_table() -> VFTable:
    """V-F table of the Cortex-A15 (big) cluster."""
    return vf_table_from_pairs(A15_VF_POINTS)


def a7_vf_table() -> VFTable:
    """V-F table of the Cortex-A7 (LITTLE) cluster."""
    return vf_table_from_pairs(A7_VF_POINTS)


def tc2_chip(
    big_cores: int = 2,
    little_cores: int = 3,
    transition_latency_s: float = 0.001,
) -> Chip:
    """Build the TC2 big.LITTLE chip (2x A15 + 3x A7 by default).

    Both clusters start at their lowest level, matching a freshly booted
    board running the powersave-initialised kernel.
    """
    big = Cluster(
        cluster_id="big",
        core_type="A15",
        n_cores=big_cores,
        vf_table=a15_vf_table(),
        power_params=A15_POWER,
        transition_latency_s=transition_latency_s,
    )
    little = Cluster(
        cluster_id="little",
        core_type="A7",
        n_cores=little_cores,
        vf_table=a7_vf_table(),
        power_params=A7_POWER,
        transition_latency_s=transition_latency_s,
    )
    return Chip(name="vexpress-tc2", clusters=[big, little])


def odroid_xu3_chip(transition_latency_s: float = 0.001) -> Chip:
    """A 4+4 big.LITTLE chip in the Odroid-XU3 (Exynos 5422) mould.

    Same micro-architectures as TC2 but four cores per cluster -- useful
    for checking that nothing in the framework assumes the 2+3 topology,
    and as a second realistic target for examples.
    """
    big = Cluster(
        cluster_id="big",
        core_type="A15",
        n_cores=4,
        vf_table=a15_vf_table(),
        power_params=A15_POWER,
        transition_latency_s=transition_latency_s,
    )
    little = Cluster(
        cluster_id="little",
        core_type="A7",
        n_cores=4,
        vf_table=a7_vf_table(),
        power_params=A7_POWER,
        transition_latency_s=transition_latency_s,
    )
    return Chip(name="odroid-xu3", clusters=[big, little])


def synthetic_chip(
    n_clusters: int,
    cores_per_cluster: int,
    seed: Optional[int] = None,
    max_supply_range: Sequence[float] = (350.0, 3000.0),
    n_levels: int = 8,
) -> Chip:
    """Build a synthetic many-cluster chip for scalability emulation.

    Matches the paper's Table 7 setup: cluster maximum supplies are drawn
    uniformly from 350-3000 PUs and each cluster gets a ladder of
    ``n_levels`` evenly spaced levels up to its maximum.
    """
    if n_clusters < 1 or cores_per_cluster < 1:
        raise ValueError("need at least one cluster and one core per cluster")
    rng = random.Random(seed)
    lo, hi = max_supply_range
    clusters: List[Cluster] = []
    for i in range(n_clusters):
        max_f = rng.uniform(lo, hi)
        min_f = max_f / n_levels
        pairs = [
            (min_f + k * (max_f - min_f) / (n_levels - 1), 0.8 + 0.4 * k / (n_levels - 1))
            for k in range(n_levels)
        ]
        clusters.append(
            Cluster(
                cluster_id=f"cl{i}",
                core_type=f"type{i % 4}",
                n_cores=cores_per_cluster,
                vf_table=vf_table_from_pairs(pairs),
                power_params=CorePowerParams(k_dyn=8e-4, k_static=0.2, uncore_w=0.15),
            )
        )
    return Chip(name=f"synthetic-{n_clusters}x{cores_per_cluster}", clusters=clusters)
