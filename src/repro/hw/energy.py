"""Energy accounting: integrates power samples over time.

The TC2 board exposes cumulative energy counters per cluster through hwmon;
this module provides the equivalent running integrals for the simulator and
for the experiment harness's average-power reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EnergyMeter:
    """Accumulates per-cluster and chip energy from periodic power samples.

    The meter uses simple rectangle-rule integration, which matches how the
    board's firmware samples its sense resistors at a fixed rate.
    """

    energy_j: Dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def record(self, cluster_powers_w: Dict[str, float], dt: float) -> None:
        """Add one sample interval of ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        for cluster_id, watts in cluster_powers_w.items():
            self.energy_j[cluster_id] = self.energy_j.get(cluster_id, 0.0) + watts * dt
        self.elapsed_s += dt

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def average_power_w(self) -> float:
        """Mean chip power over the metering window (0 if empty)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.total_energy_j / self.elapsed_s

    def cluster_energy_j(self, cluster_id: str) -> float:
        return self.energy_j.get(cluster_id, 0.0)

    def reset(self) -> None:
        self.energy_j.clear()
        self.elapsed_s = 0.0
