"""Sensor interfaces mimicking the TC2 board's hwmon instrumentation.

The evaluation platform is "equipped with sensors to measure frequency,
voltage, power and energy consumption per cluster" (paper section 5.1),
read through the Linux hwmon interface.  Governors in this reproduction go
through the same narrow sensor API instead of poking the chip model
directly, so that sensor imperfections (sampling period, noise) can be
injected without touching governor code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional
import random

from .thermal import ThermalModel
from .topology import Chip


class SensorReadError(RuntimeError):
    """A sensor read produced no usable reading (hwmon timeout/failure).

    Raised by faulty sensor front ends (see :mod:`repro.faults`); the
    engine substitutes the last good sample so governors and metrics keep
    running on stale-but-sane data, the way a production power manager
    treats a failed hwmon read.
    """


@dataclass
class SensorSample:
    """One chip-wide sensor reading."""

    chip_power_w: float
    cluster_power_w: Dict[str, float]
    cluster_frequency_mhz: Dict[str, float]
    cluster_voltage_v: Dict[str, float]


class PowerSensor:
    """Samples chip and cluster power, optionally with measurement noise.

    Args:
        chip: The chip to observe.
        noise_std_w: Standard deviation of additive Gaussian noise applied
            to each cluster reading (0 disables noise).  Noise is clamped
            so readings never go negative.
        seed: Seed for the sensor's private RNG, for reproducible noise.
    """

    def __init__(self, chip: Chip, noise_std_w: float = 0.0, seed: Optional[int] = None):
        self._chip = chip
        self._noise_std_w = noise_std_w
        self._rng = random.Random(seed)
        self._last_sample: Optional[SensorSample] = None

    def sample(self) -> SensorSample:
        """Take a fresh reading of every cluster."""
        cluster_power: Dict[str, float] = {}
        cluster_freq: Dict[str, float] = {}
        cluster_volt: Dict[str, float] = {}
        for cluster in self._chip.clusters:
            watts = cluster.power_w(self._chip.power_model)
            if self._noise_std_w > 0.0:
                watts = max(0.0, watts + self._rng.gauss(0.0, self._noise_std_w))
            cluster_power[cluster.cluster_id] = watts
            cluster_freq[cluster.cluster_id] = cluster.frequency_mhz
            cluster_volt[cluster.cluster_id] = (
                cluster.level.voltage_v if cluster.powered else 0.0
            )
        sample = SensorSample(
            chip_power_w=sum(cluster_power.values()),
            cluster_power_w=cluster_power,
            cluster_frequency_mhz=cluster_freq,
            cluster_voltage_v=cluster_volt,
        )
        self._last_sample = sample
        return sample

    @property
    def last_sample(self) -> Optional[SensorSample]:
        """Most recent reading, or ``None`` before the first sample."""
        return self._last_sample


@dataclass
class ThermalSample:
    """One chip-wide thermal reading (degrees Celsius per cluster)."""

    cluster_temperature_c: Dict[str, float]

    @property
    def max_temperature_c(self) -> float:
        return max(self.cluster_temperature_c.values())


class ThermalSensor:
    """Samples per-cluster temperatures from a :class:`ThermalModel`.

    The thermal analogue of :class:`PowerSensor`, with the same seams: an
    optional Gaussian noise term with a private, stream-seeded RNG, a
    ``last_sample`` cache, and the same front-end shape the fault injector
    wraps (``sample()`` may raise :class:`SensorReadError` through a
    faulty front end; governors never read the model directly).

    Args:
        model: The thermal model to observe.
        noise_std_c: Standard deviation of additive Gaussian noise on
            each cluster reading, in kelvin (0 disables noise).
        seed: Seed for the sensor's private RNG, for reproducible noise.
    """

    def __init__(
        self,
        model: ThermalModel,
        noise_std_c: float = 0.0,
        seed: Optional[int] = None,
    ):
        self._model = model
        self._noise_std_c = noise_std_c
        self._rng = random.Random(seed)
        self._last_sample: Optional[ThermalSample] = None

    def sample(self) -> ThermalSample:
        """Take a fresh reading of every cluster's temperature."""
        temps: Dict[str, float] = {}
        for cluster_id, temp in self._model.temperatures().items():
            if self._noise_std_c > 0.0:
                temp += self._rng.gauss(0.0, self._noise_std_c)
            temps[cluster_id] = temp
        sample = ThermalSample(cluster_temperature_c=temps)
        self._last_sample = sample
        return sample

    @property
    def last_sample(self) -> Optional[ThermalSample]:
        """Most recent reading, or ``None`` before the first sample."""
        return self._last_sample
