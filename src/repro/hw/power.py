"""Analytic power model for heterogeneous cores.

The paper reads per-cluster power from the TC2 board's hardware sensors; we
substitute a standard CMOS analytic model calibrated against the chip-level
figures quoted in the paper (section 5.3): the A7 (LITTLE) cluster peaks at
about 2 W, the A15 (big) cluster at about 6 W, and the platform TDP is 8 W.

Per-core power at operating point ``(f, V)`` with utilisation ``u``::

    P_core = k_dyn * V^2 * f * u  +  k_static * V

and each powered cluster additionally burns a fixed uncore power (L2,
interconnect interface).  Utilisation is the fraction of delivered cycles
actually consumed by tasks; an idle core still pays leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

from .vf import VFLevel


@dataclass(frozen=True)
class CorePowerParams:
    """Calibration constants of one core micro-architecture.

    Attributes:
        k_dyn: Dynamic power coefficient in W / (V^2 * MHz).
        k_static: Leakage coefficient in W / V (per core, when powered).
        uncore_w: Fixed per-cluster power in W while the cluster is powered
            (shared L2, snoop/interconnect logic); accounted once per
            cluster, not per core.
    """

    k_dyn: float
    k_static: float
    uncore_w: float

    def core_power_w(self, level: VFLevel, utilization: float) -> float:
        """Power of a single powered core at ``level`` and ``utilization``.

        Args:
            level: Current V-F operating point of the core's cluster.
            utilization: Fraction of the core's cycles consumed, in [0, 1].
        """
        u = min(1.0, max(0.0, utilization))
        dynamic = self.k_dyn * level.voltage_v**2 * level.frequency_mhz * u
        static = self.k_static * level.voltage_v
        return dynamic + static


class PowerModel:
    """Chip-level power aggregation over clusters.

    The model is deliberately stateless: callers pass the current operating
    point and utilisation and receive watts back, which keeps it usable both
    by the simulator (ground truth) and by governors performing what-if
    speculation (the LBT module estimates power of candidate mappings).
    """

    def __init__(self) -> None:
        # (params, level) -> (dynamic coefficient, per-core static watts).
        # Both inputs are frozen dataclasses, so the cache stays small (a
        # handful of V-F levels per micro-architecture) and never stales.
        self._coef_cache: "dict[tuple[CorePowerParams, VFLevel], tuple[float, float]]" = {}

    def cluster_power_w(
        self,
        params: CorePowerParams,
        level: VFLevel,
        core_utilizations: "list[float]",
        powered: bool = True,
    ) -> float:
        """Total power of one cluster.

        Args:
            params: Micro-architecture calibration of the cluster's cores.
            level: The cluster's current V-F operating point.
            core_utilizations: Per-core utilisation in [0, 1]; the length
                defines the number of cores in the cluster.
            powered: ``False`` models a power-gated cluster (0 W), which
                the paper uses both for idle clusters and for the HL
                baseline's A15 switch-off under a TDP cap.
        """
        if not powered:
            return 0.0
        cached = self._coef_cache.get((params, level))
        if cached is None:
            # Same association order as core_power_w: (k_dyn * V^2 * f) * u.
            cached = (
                params.k_dyn * level.voltage_v**2 * level.frequency_mhz,
                params.k_static * level.voltage_v,
            )
            self._coef_cache[(params, level)] = cached
        coef, static = cached
        core_total = 0.0
        for u in core_utilizations:
            if u < 0.0:
                u = 0.0
            elif u > 1.0:
                u = 1.0
            core_total += coef * u + static
        return core_total + params.uncore_w

    def max_cluster_power_w(
        self, params: CorePowerParams, level: VFLevel, n_cores: int
    ) -> float:
        """Cluster power with every core fully utilised at ``level``."""
        return self.cluster_power_w(params, level, [1.0] * n_cores)
