"""Task-migration cost model.

The paper measures migration penalties on the TC2 board (section 5.1):

===========================  =================
Direction                    Measured cost
===========================  =================
within the big cluster       54 - 105 us
within the LITTLE cluster    71 - 167 us
LITTLE -> big                1.88 - 2.16 ms
big -> LITTLE                3.54 - 3.83 ms
===========================  =================

The cost depends on the frequency level: higher frequency means the
migration machinery (run-queue manipulation, cache state transfer over the
CCI) completes faster, so we interpolate linearly between the range's
maximum (at the cluster's lowest level) and minimum (at its highest level).
The simulator charges the cost as time during which the migrating task
receives no supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .topology import Cluster


@dataclass(frozen=True)
class CostRange:
    """Migration cost range in seconds: ``max_s`` at min freq, ``min_s`` at max."""

    min_s: float
    max_s: float

    def at_fraction(self, speed_fraction: float) -> float:
        """Cost when the relevant cluster runs at ``speed_fraction`` of max.

        ``speed_fraction`` in [0, 1]; 0 = lowest level (worst cost),
        1 = highest level (best cost).
        """
        f = min(1.0, max(0.0, speed_fraction))
        return self.max_s - f * (self.max_s - self.min_s)


#: Default ranges measured on TC2 (paper section 5.1), keyed by
#: (source core type, destination core type).
TC2_MIGRATION_COSTS: Dict[Tuple[str, str], CostRange] = {
    ("A15", "A15"): CostRange(54e-6, 105e-6),
    ("A7", "A7"): CostRange(71e-6, 167e-6),
    ("A7", "A15"): CostRange(1.88e-3, 2.16e-3),
    ("A15", "A7"): CostRange(3.54e-3, 3.83e-3),
}


class MigrationCostModel:
    """Computes migration penalties between (possibly identical) clusters.

    Unknown core-type pairs fall back to a conservative default so the
    model stays usable for the synthetic many-cluster chips used in the
    scalability experiments.
    """

    def __init__(
        self,
        costs: Dict[Tuple[str, str], CostRange] = None,
        default_intra_cluster: CostRange = CostRange(60e-6, 170e-6),
        default_inter_cluster: CostRange = CostRange(2e-3, 4e-3),
    ):
        self._costs = dict(TC2_MIGRATION_COSTS if costs is None else costs)
        self._default_intra = default_intra_cluster
        self._default_inter = default_inter_cluster

    def cost_s(self, source: Cluster, destination: Cluster) -> float:
        """Migration penalty in seconds for moving one task now."""
        key = (source.core_type, destination.core_type)
        if key in self._costs:
            cost_range = self._costs[key]
        elif source is destination or source.core_type == destination.core_type:
            cost_range = self._default_intra
        else:
            cost_range = self._default_inter
        # The destination's speed dominates how quickly the task is
        # re-established (cache warm-up, run-queue insertion).
        table = destination.vf_table
        span = table.max_level.frequency_mhz - table.min_level.frequency_mhz
        if span <= 0:
            fraction = 1.0
        else:
            fraction = (destination.frequency_mhz - table.min_level.frequency_mhz) / span
        return cost_range.at_fraction(fraction)

    def is_inter_cluster(self, source: Cluster, destination: Cluster) -> bool:
        return source is not destination
