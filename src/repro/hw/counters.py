"""Synthetic per-core performance counters.

Real power managers rarely meter power directly: they estimate it from
hardware performance counters (cycle, instruction and memory-stall
counts) through a fitted regression model.  This module emits a
seed-deterministic synthetic counter stream from the simulator's true
utilisation and V-F state so the estimation layer
(:mod:`repro.core.powerest`) has something realistic to fit against:

* ``active_cycles`` -- cycles the core actually consumed this tick
  (utilisation x delivered frequency);
* ``instr_proxy`` -- retired-instruction proxy: active cycles times an
  IPC that droops with utilisation (contention);
* ``mem_stall`` -- memory-stall-cycle proxy: a utilisation-dependent
  share of the active cycles;
* ``idle_s`` -- idle residency in seconds of the tick.

The counters are deliberately *informative but imperfect*: each count
carries multiplicative measurement noise, and a configurable fraction of
every core's activity leaks into its cluster neighbours' counters
(shared-resource cross-talk), so per-core attribution is never exact --
the estimator has to earn its keep.  The true analytic
:class:`~repro.hw.power.PowerModel` never reads these counters; they
exist only for the estimated-power operating mode.

The emitter mirrors the :class:`~repro.hw.sensors.PowerSensor` front-end
shape (``sample()`` plus a ``last_sample`` cache and a private
stream-seeded RNG) so the fault injector can wrap it without the engine
noticing (see ``FaultyCounters`` in :mod:`repro.faults.injector`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from .topology import Chip

#: Names of the per-core counters, in canonical order.
COUNTER_NAMES = ("active_cycles", "instr_proxy", "mem_stall", "idle_s")

#: Cycle-count scale used to normalise counter features (one tick at
#: 1 GHz delivers 1e7 cycles); keeps the estimator's matrices conditioned.
CYCLES_SCALE = 1e7


@dataclass(frozen=True)
class CounterConfig:
    """Shape of the synthetic counter stream.

    Attributes:
        noise_scale: Relative standard deviation of the multiplicative
            measurement noise on each cycle counter (0 = noiseless).
        cross_talk: Fraction of the *mean neighbouring-core* activity
            leaked into each core's cycle counters (shared L2 / snoop
            traffic showing up in the wrong core's counts).  0 disables
            cross-talk; must stay below 1.
        stall_fraction: Base share of active cycles spent stalled on
            memory at full utilisation; the effective share scales with
            utilisation (contention).
        ipc_base: Instructions retired per active cycle at idle-machine
            conditions.
        ipc_droop: Relative IPC loss at full utilisation (contention);
            effective IPC is ``ipc_base * (1 - ipc_droop * u)``.
    """

    noise_scale: float = 0.02
    cross_talk: float = 0.10
    stall_fraction: float = 0.15
    ipc_base: float = 1.2
    ipc_droop: float = 0.3

    def __post_init__(self) -> None:
        if self.noise_scale < 0:
            raise ValueError(
                f"counter noise_scale must be non-negative, got {self.noise_scale}"
            )
        if not 0.0 <= self.cross_talk < 1.0:
            raise ValueError(
                f"cross_talk must be in [0, 1), got {self.cross_talk}"
            )
        if not 0.0 <= self.stall_fraction < 1.0:
            raise ValueError(
                f"stall_fraction must be in [0, 1), got {self.stall_fraction}"
            )
        if self.ipc_base <= 0:
            raise ValueError(f"ipc_base must be positive, got {self.ipc_base}")
        if not 0.0 <= self.ipc_droop <= 1.0:
            raise ValueError(
                f"ipc_droop must be in [0, 1], got {self.ipc_droop}"
            )


@dataclass
class CounterSample:
    """One tick's counter readings for every core.

    ``core_counters`` maps core id to a dict over :data:`COUNTER_NAMES`.
    Cores of a power-gated cluster read all-zero cycle counters and a
    full tick of idle residency, like offlined perf counters.
    """

    time_s: float
    core_counters: Dict[str, Dict[str, float]]

    def cluster_totals(self, chip: Chip) -> Dict[str, Dict[str, float]]:
        """Per-cluster sums of every counter (the estimator's features)."""
        totals: Dict[str, Dict[str, float]] = {}
        for cluster in chip.clusters:
            sums = dict.fromkeys(COUNTER_NAMES, 0.0)
            for core in cluster.cores:
                counters = self.core_counters.get(core.core_id)
                if counters is None:
                    continue
                for name in COUNTER_NAMES:
                    sums[name] += counters.get(name, 0.0)
            totals[cluster.cluster_id] = sums
        return totals


class CounterEmitter:
    """Emits one :class:`CounterSample` per tick from true chip state.

    Args:
        chip: The chip whose utilisation/V-F state feeds the counters.
        config: Counter-shape configuration (noise, cross-talk, IPC).
        seed: Seed for the emitter's private RNG; derive it through
            :func:`~repro.sim.engine.derive_stream_seed` with the
            ``"perf-counters"`` stream so counter noise cannot perturb
            any other subsystem's randomness.
    """

    def __init__(
        self,
        chip: Chip,
        config: Optional[CounterConfig] = None,
        seed: Optional[int] = None,
    ):
        self._chip = chip
        self.config = config or CounterConfig()
        self._rng = random.Random(seed)
        self._last_sample: Optional[CounterSample] = None

    def sample(self, time_s: float, dt: float) -> CounterSample:
        """Take a fresh counter reading of every core."""
        cfg = self.config
        noise = cfg.noise_scale
        rng = self._rng
        core_counters: Dict[str, Dict[str, float]] = {}
        for cluster in self._chip.clusters:
            if not cluster.powered:
                for core in cluster.cores:
                    core_counters[core.core_id] = {
                        "active_cycles": 0.0,
                        "instr_proxy": 0.0,
                        "mem_stall": 0.0,
                        "idle_s": dt,
                    }
                continue
            cycles = cluster.frequency_mhz * 1e6 * dt
            raw = []
            for core in cluster.cores:
                u = core.utilization
                active = u * cycles
                stall = cfg.stall_fraction * (0.5 + u) * active
                instr = cfg.ipc_base * (1.0 - cfg.ipc_droop * u) * active
                if noise > 0.0:
                    active = max(0.0, active * (1.0 + noise * rng.gauss(0.0, 1.0)))
                    instr = max(0.0, instr * (1.0 + noise * rng.gauss(0.0, 1.0)))
                    stall = max(0.0, stall * (1.0 + noise * rng.gauss(0.0, 1.0)))
                raw.append((core.core_id, active, instr, stall, (1.0 - u) * dt))
            n = len(raw)
            for core_id, active, instr, stall, idle in raw:
                if cfg.cross_talk > 0.0 and n > 1:
                    # Leak a slice of the *other* cores' mean activity in.
                    others = 1.0 / (n - 1)
                    active += cfg.cross_talk * others * (
                        sum(r[1] for r in raw) - active
                    )
                    instr += cfg.cross_talk * others * (
                        sum(r[2] for r in raw) - instr
                    )
                    stall += cfg.cross_talk * others * (
                        sum(r[3] for r in raw) - stall
                    )
                core_counters[core_id] = {
                    "active_cycles": active,
                    "instr_proxy": instr,
                    "mem_stall": stall,
                    "idle_s": idle,
                }
        sample = CounterSample(time_s=time_s, core_counters=core_counters)
        self._last_sample = sample
        return sample

    @property
    def last_sample(self) -> Optional[CounterSample]:
        """Most recent reading, or ``None`` before the first sample."""
        return self._last_sample

    # -- snapshot/restore (checkpointing) -------------------------------
    def rng_state(self):
        """The emitter RNG's state (opaque; for checkpointing)."""
        return self._rng.getstate()

    def set_rng_state(self, state) -> None:
        self._rng.setstate(state)
