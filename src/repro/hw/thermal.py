"""Lumped RC thermal model per cluster.

The paper motivates the tolerance factor ``delta`` with thermal concerns:
fast DVFS responses cause "frequent V-F level transitions, and hence
thermal cycling, which can be detrimental to both the performance and
the reliability of the hardware" (section 3.2.2, citing Rosing et al.).
The TC2 board has no per-cluster thermal sensors the paper could read,
so the evaluation never shows temperatures -- but a reproduction that
wants to *measure* thermal cycling needs a thermal substrate.

Standard first-order lumped model per cluster::

    C * dT/dt = P - (T - T_ambient) / R

with thermal resistance ``R`` [K/W] and capacitance ``C`` [J/K].  The
defaults are calibrated so the big cluster at its ~6 W peak settles
around 75-80 degC over a 25 degC ambient with a time constant of a few
seconds -- representative of a passively cooled mobile SoC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ThermalParams:
    """RC parameters of one cluster's thermal path to ambient."""

    resistance_k_per_w: float = 9.0
    capacitance_j_per_k: float = 0.35
    ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if self.resistance_k_per_w <= 0 or self.capacitance_j_per_k <= 0:
            raise ValueError("R and C must be positive")

    @property
    def time_constant_s(self) -> float:
        """``tau = R * C``: how fast the cluster heats/cools."""
        return self.resistance_k_per_w * self.capacitance_j_per_k

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the cluster converges to at constant ``power_w``."""
        return self.ambient_c + power_w * self.resistance_k_per_w


class ThermalModel:
    """Integrates per-cluster temperatures from power samples.

    Exact exponential integration per step (unconditionally stable for
    any ``dt``)::

        T' = T_ss + (T - T_ss) * exp(-dt / tau)
    """

    def __init__(
        self,
        cluster_ids: Sequence[str],
        params: Optional[Dict[str, ThermalParams]] = None,
        initial_c: Optional[float] = None,
    ):
        if not cluster_ids:
            raise ValueError("need at least one cluster")
        self._params: Dict[str, ThermalParams] = {
            cid: (params or {}).get(cid, ThermalParams()) for cid in cluster_ids
        }
        self._temps: Dict[str, float] = {
            cid: (initial_c if initial_c is not None else p.ambient_c)
            for cid, p in self._params.items()
        }

    def params_of(self, cluster_id: str) -> ThermalParams:
        return self._params[cluster_id]

    def temperature_c(self, cluster_id: str) -> float:
        return self._temps[cluster_id]

    def temperatures(self) -> Dict[str, float]:
        return dict(self._temps)

    def max_temperature_c(self) -> float:
        return max(self._temps.values())

    def step(self, cluster_powers_w: Dict[str, float], dt: float) -> Dict[str, float]:
        """Advance all clusters by ``dt`` seconds; returns new temps."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        for cluster_id, params in self._params.items():
            power = cluster_powers_w.get(cluster_id, 0.0)
            steady = params.steady_state_c(power)
            decay = math.exp(-dt / params.time_constant_s)
            self._temps[cluster_id] = steady + (
                self._temps[cluster_id] - steady
            ) * decay
        return self.temperatures()


@dataclass
class ThermalCycleCounter:
    """Counts thermal cycles: excursions beyond a delta-T threshold.

    A cycle is one reversal of direction with amplitude at least
    ``threshold_k`` -- the quantity reliability models (Coffin-Manson)
    grow with.  Feed it one temperature per sample.
    """

    threshold_k: float = 3.0
    cycles: int = 0
    _extreme: Optional[float] = field(default=None, repr=False)
    _direction: int = field(default=0, repr=False)

    def update(self, temperature_c: float) -> int:
        if self._extreme is None:
            self._extreme = temperature_c
            return self.cycles
        delta = temperature_c - self._extreme
        if self._direction >= 0:
            if delta > 0:
                self._extreme = temperature_c
            elif -delta >= self.threshold_k:
                self.cycles += 1
                self._direction = -1
                self._extreme = temperature_c
        if self._direction < 0:
            if delta < 0:
                self._extreme = temperature_c
            elif delta >= self.threshold_k:
                self.cycles += 1
                self._direction = 1
                self._extreme = temperature_c
        return self.cycles


def track_thermals(
    cluster_powers_series: Sequence[Tuple[float, Dict[str, float]]],
    cluster_ids: Sequence[str],
    params: Optional[Dict[str, ThermalParams]] = None,
    cycle_threshold_k: float = 3.0,
) -> Tuple[Dict[str, List[float]], Dict[str, int]]:
    """Replay a (dt, powers) series through the model.

    Returns per-cluster temperature traces and thermal-cycle counts --
    the offline path used to post-process a finished simulation's
    metrics without having run the thermal model live.
    """
    model = ThermalModel(cluster_ids, params=params)
    counters = {cid: ThermalCycleCounter(cycle_threshold_k) for cid in cluster_ids}
    traces: Dict[str, List[float]] = {cid: [] for cid in cluster_ids}
    for dt, powers in cluster_powers_series:
        temps = model.step(powers, dt)
        for cid in cluster_ids:
            traces[cid].append(temps[cid])
            counters[cid].update(temps[cid])
    return traces, {cid: c.cycles for cid, c in counters.items()}
