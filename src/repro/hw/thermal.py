"""Lumped RC thermal model per cluster.

The paper motivates the tolerance factor ``delta`` with thermal concerns:
fast DVFS responses cause "frequent V-F level transitions, and hence
thermal cycling, which can be detrimental to both the performance and
the reliability of the hardware" (section 3.2.2, citing Rosing et al.).
The TC2 board has no per-cluster thermal sensors the paper could read,
so the evaluation never shows temperatures -- but a reproduction that
wants to *measure* thermal cycling needs a thermal substrate.

Standard first-order lumped model per cluster::

    C * dT/dt = P - (T - T_ambient) / R

with thermal resistance ``R`` [K/W] and capacitance ``C`` [J/K].  The
defaults are calibrated so the big cluster at its ~6 W peak settles
around 75-80 degC over a 25 degC ambient with a time constant of a few
seconds -- representative of a passively cooled mobile SoC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ThermalParams:
    """RC parameters of one cluster's thermal path to ambient."""

    resistance_k_per_w: float = 9.0
    capacitance_j_per_k: float = 0.35
    ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if self.resistance_k_per_w <= 0 or self.capacitance_j_per_k <= 0:
            raise ValueError("R and C must be positive")

    @property
    def time_constant_s(self) -> float:
        """``tau = R * C``: how fast the cluster heats/cools."""
        return self.resistance_k_per_w * self.capacitance_j_per_k

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the cluster converges to at constant ``power_w``."""
        return self.ambient_c + power_w * self.resistance_k_per_w


@dataclass(frozen=True)
class ThermalProtectionConfig:
    """Trip ladder of the :class:`~repro.core.resilience.ThermalSupervisor`.

    The four ascending thresholds gate the graduated responses -- warn
    (price surcharge), throttle (V-F ceiling), shed (migrate off the hot
    cluster) and trip (hot-unplug).  A rung is left again only once the
    temperature falls ``hysteresis_k`` below its entry threshold, so the
    ladder cannot chatter on a temperature hovering at a threshold.

    Attributes:
        warn_c: Entry threshold of the WARN rung.
        throttle_c: Entry threshold of the THROTTLE rung.
        shed_c: Entry threshold of the SHED rung.
        trip_c: Entry threshold of the TRIP rung (hot-unplug).
        hysteresis_k: Cooling below ``entry - hysteresis_k`` steps one
            rung back down.
        check_period_s: How often the supervisor evaluates the ladder;
            each evaluation moves at most one rung per cluster.
        warn_surcharge: Fractional price surcharge applied chip-wide
            while any cluster sits at WARN or above (the chip agent sees
            power inflated by ``1 + warn_surcharge``).
        estimation_guard_k: Degrees added to every sensed temperature
            while the simulation's power-estimation supervisor reports a
            degraded signal (MARGIN or FALLBACK) -- with the power model
            suspect, the supervisor leans conservative and escalates
            earlier.  Inert without an estimation pipeline.
    """

    warn_c: float = 70.0
    throttle_c: float = 80.0
    shed_c: float = 90.0
    trip_c: float = 95.0
    hysteresis_k: float = 5.0
    check_period_s: float = 0.1
    warn_surcharge: float = 0.25
    estimation_guard_k: float = 2.0

    def __post_init__(self) -> None:
        if not self.warn_c < self.throttle_c < self.shed_c < self.trip_c:
            raise ValueError(
                "thresholds must ascend: warn < throttle < shed < trip"
            )
        if self.hysteresis_k <= 0:
            raise ValueError("hysteresis must be positive")
        if self.check_period_s <= 0:
            raise ValueError("check period must be positive")
        if self.warn_surcharge < 0:
            raise ValueError("warn surcharge must be non-negative")
        if self.estimation_guard_k < 0:
            raise ValueError("estimation guard band must be non-negative")


@dataclass(frozen=True)
class ThermalConfig:
    """Simulation-time thermal tracking (``SimConfig.thermal``).

    ``None`` (the default) keeps the engine exactly as before: no thermal
    state is created, stepped, sensed or recorded.

    Attributes:
        params: Per-cluster RC parameters; clusters not listed use the
            :class:`ThermalParams` defaults.
        sensor_noise_std_c: Gaussian noise on thermal sensor readings.
        cycle_threshold_k: Delta-T a reversal must exceed to count as a
            thermal cycle (see :class:`ThermalCycleCounter`).
        tcrit_c: Critical temperature; the engine accumulates the time
            any cluster's *true* temperature exceeds it.
        protection: Enables the graduated-degradation supervisor; ``None``
            tracks temperatures without acting on them.
    """

    params: Optional[Dict[str, ThermalParams]] = None
    sensor_noise_std_c: float = 0.0
    cycle_threshold_k: float = 3.0
    tcrit_c: float = 95.0
    protection: Optional[ThermalProtectionConfig] = None

    def __post_init__(self) -> None:
        if self.sensor_noise_std_c < 0:
            raise ValueError("sensor_noise_std_c must be non-negative")
        if self.cycle_threshold_k <= 0:
            raise ValueError("cycle_threshold_k must be positive")


class ThermalModel:
    """Integrates per-cluster temperatures from power samples.

    Exact exponential integration per step (unconditionally stable for
    any ``dt``)::

        T' = T_ss + (T - T_ss) * exp(-dt / tau)

    Two fault seams let the injector degrade the physics without touching
    the integrator: a per-cluster *resistance factor* (a clogged heatsink
    multiplies the thermal resistance, raising the steady state and
    slowing the response) and a per-cluster *power injection* (a thermal
    runaway adds heat the power model never accounted for).
    """

    def __init__(
        self,
        cluster_ids: Sequence[str],
        params: Optional[Dict[str, ThermalParams]] = None,
        initial_c: Optional[float] = None,
    ):
        if not cluster_ids:
            raise ValueError("need at least one cluster")
        self._params: Dict[str, ThermalParams] = {
            cid: (params or {}).get(cid, ThermalParams()) for cid in cluster_ids
        }
        self._temps: Dict[str, float] = {
            cid: (initial_c if initial_c is not None else p.ambient_c)
            for cid, p in self._params.items()
        }
        self._resistance_factor: Dict[str, float] = {
            cid: 1.0 for cid in self._params
        }
        self._power_injection_w: Dict[str, float] = {
            cid: 0.0 for cid in self._params
        }

    def params_of(self, cluster_id: str) -> ThermalParams:
        return self._params[cluster_id]

    def temperature_c(self, cluster_id: str) -> float:
        return self._temps[cluster_id]

    def temperatures(self) -> Dict[str, float]:
        return dict(self._temps)

    def max_temperature_c(self) -> float:
        return max(self._temps.values())

    # -- fault seams (see repro.faults) -----------------------------------------
    def set_resistance_factor(self, cluster_id: str, factor: float) -> None:
        """Multiply the cluster's thermal resistance (cooling degradation)."""
        if factor <= 0 or not math.isfinite(factor):
            raise ValueError("resistance factor must be positive and finite")
        self._resistance_factor[cluster_id] = factor

    def set_power_injection(self, cluster_id: str, watts: float) -> None:
        """Add ``watts`` of unaccounted heat to the cluster (runaway)."""
        if watts < 0 or not math.isfinite(watts):
            raise ValueError("power injection must be non-negative and finite")
        self._power_injection_w[cluster_id] = watts

    def resistance_factor(self, cluster_id: str) -> float:
        return self._resistance_factor[cluster_id]

    def power_injection_w(self, cluster_id: str) -> float:
        return self._power_injection_w[cluster_id]

    def step(self, cluster_powers_w: Dict[str, float], dt: float) -> Dict[str, float]:
        """Advance all clusters by ``dt`` seconds; returns new temps."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        for cluster_id, params in self._params.items():
            power = (
                cluster_powers_w.get(cluster_id, 0.0)
                + self._power_injection_w[cluster_id]
            )
            factor = self._resistance_factor[cluster_id]
            resistance = params.resistance_k_per_w * factor
            steady = params.ambient_c + power * resistance
            tau = resistance * params.capacitance_j_per_k
            decay = math.exp(-dt / tau)
            self._temps[cluster_id] = steady + (
                self._temps[cluster_id] - steady
            ) * decay
        return self.temperatures()

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "temps": dict(self._temps),
            "resistance_factor": dict(self._resistance_factor),
            "power_injection_w": dict(self._power_injection_w),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._temps = {cid: float(t) for cid, t in state["temps"].items()}
        self._resistance_factor = {
            cid: float(f) for cid, f in state["resistance_factor"].items()
        }
        self._power_injection_w = {
            cid: float(w) for cid, w in state["power_injection_w"].items()
        }


@dataclass
class ThermalCycleCounter:
    """Counts thermal cycles: excursions beyond a delta-T threshold.

    A cycle is one reversal of direction with amplitude at least
    ``threshold_k`` -- the quantity reliability models (Coffin-Manson)
    grow with.  Feed it one temperature per sample.
    """

    threshold_k: float = 3.0
    cycles: int = 0
    _extreme: Optional[float] = field(default=None, repr=False)
    _direction: int = field(default=0, repr=False)

    def update(self, temperature_c: float) -> int:
        if self._extreme is None:
            self._extreme = temperature_c
            return self.cycles
        delta = temperature_c - self._extreme
        if self._direction >= 0:
            if delta > 0:
                self._extreme = temperature_c
            elif -delta >= self.threshold_k:
                self.cycles += 1
                self._direction = -1
                self._extreme = temperature_c
        if self._direction < 0:
            if delta < 0:
                self._extreme = temperature_c
            elif delta >= self.threshold_k:
                self.cycles += 1
                self._direction = 1
                self._extreme = temperature_c
        return self.cycles

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "extreme": self._extreme,
            "direction": self._direction,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.cycles = state["cycles"]
        self._extreme = state["extreme"]
        self._direction = state["direction"]


def track_thermals(
    cluster_powers_series: Sequence[Tuple[float, Dict[str, float]]],
    cluster_ids: Sequence[str],
    params: Optional[Dict[str, ThermalParams]] = None,
    cycle_threshold_k: float = 3.0,
) -> Tuple[Dict[str, List[float]], Dict[str, int]]:
    """Replay a (dt, powers) series through the model.

    Returns per-cluster temperature traces and thermal-cycle counts --
    the offline path used to post-process a finished simulation's
    metrics without having run the thermal model live.
    """
    model = ThermalModel(cluster_ids, params=params)
    counters = {cid: ThermalCycleCounter(cycle_threshold_k) for cid in cluster_ids}
    traces: Dict[str, List[float]] = {cid: [] for cid in cluster_ids}
    for dt, powers in cluster_powers_series:
        temps = model.step(powers, dt)
        for cid in cluster_ids:
            traces[cid].append(temps[cid])
            counters[cid].update(temps[cid])
    return traces, {cid: c.cycles for cid, c in counters.items()}
