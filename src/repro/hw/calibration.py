"""Power-model calibration utilities.

The TC2 preset's power coefficients were fitted by hand against the
paper's quoted envelope (A7 cluster ~2 W, A15 ~6 W, TDP 8 W).  Porting
the framework to another chip means re-fitting; this module solves the
fit analytically and verifies an existing calibration, so presets for new
silicon are one function call instead of trial and error.

Model recap (see :mod:`repro.hw.power`)::

    P_cluster(max) = n * (k_dyn * V^2 * f + k_static * V) + uncore

Given a target full-load cluster power and a chosen dynamic/static split,
the two coefficients follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .power import CorePowerParams, PowerModel
from .vf import VFLevel, VFTable


@dataclass(frozen=True)
class CalibrationTarget:
    """What the fitted cluster should look like at full load."""

    max_power_w: float  #: cluster power, all cores busy at the top level
    n_cores: int
    top_level: VFLevel
    dynamic_fraction: float = 0.8  #: share of core power that is dynamic
    uncore_w: float = 0.15

    def __post_init__(self) -> None:
        if self.max_power_w <= self.uncore_w:
            raise ValueError("target power must exceed the uncore floor")
        if not 0.0 < self.dynamic_fraction < 1.0:
            raise ValueError("dynamic fraction must be in (0, 1)")
        if self.n_cores < 1:
            raise ValueError("need at least one core")


def fit_power_params(target: CalibrationTarget) -> CorePowerParams:
    """Solve ``(k_dyn, k_static)`` for the target envelope exactly."""
    per_core = (target.max_power_w - target.uncore_w) / target.n_cores
    dynamic = per_core * target.dynamic_fraction
    static = per_core * (1.0 - target.dynamic_fraction)
    level = target.top_level
    k_dyn = dynamic / (level.voltage_v**2 * level.frequency_mhz)
    k_static = static / level.voltage_v
    return CorePowerParams(k_dyn=k_dyn, k_static=k_static, uncore_w=target.uncore_w)


def verify_calibration(
    params: CorePowerParams,
    vf_table: VFTable,
    n_cores: int,
    expected_max_w: float,
    tolerance: float = 0.15,
) -> Tuple[bool, float]:
    """Check a calibration against an expected full-load power.

    Returns ``(within tolerance, measured watts)``.
    """
    model = PowerModel()
    measured = model.max_cluster_power_w(params, vf_table.max_level, n_cores)
    ok = abs(measured - expected_max_w) <= tolerance * expected_max_w
    return ok, measured


def energy_per_pu_w(
    params: CorePowerParams, vf_table: VFTable, n_cores: int, level_index: Optional[int] = None
) -> float:
    """Watts per PU of a fully loaded cluster at ``level_index`` (default max).

    The figure of merit the LBT module's energy-aware pricing uses; handy
    when choosing which cluster of a new chip should host steady work.
    """
    index = vf_table.max_index if level_index is None else vf_table.clamp_index(level_index)
    level = vf_table[index]
    watts = PowerModel().max_cluster_power_w(params, level, n_cores)
    return watts / (level.supply_pus * n_cores)
