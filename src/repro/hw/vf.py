"""Voltage-frequency operating points and per-cluster V-F tables.

The paper's platform (ARM big.LITTLE TC2) exposes a small set of discrete
voltage-frequency (V-F) operating points per cluster; all cores of a cluster
share one regulator and therefore one operating point.  Supply of
computational resources is expressed in Processing Units (PU), where one PU
is one million processor cycles per second -- i.e. a core at ``f`` MHz
supplies ``f`` PUs (paper section 2, "Supply Model").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class VFLevel:
    """A single discrete voltage-frequency operating point.

    Attributes:
        frequency_mhz: Core clock in MHz.  Numerically equal to the supply
            of the core in PUs when running at this level.
        voltage_v: Supply voltage at this operating point, in volts.
    """

    frequency_mhz: float
    voltage_v: float

    @property
    def supply_pus(self) -> float:
        """Supply produced by one core at this level, in PUs (== MHz)."""
        return self.frequency_mhz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.frequency_mhz:.0f}MHz@{self.voltage_v:.2f}V"


class VFTable:
    """An ordered collection of :class:`VFLevel` for one cluster.

    Levels are sorted ascending by frequency.  The table supports the level
    arithmetic the cluster agent needs: stepping one level up/down in
    response to inflation/deflation, and rounding a demand up to the next
    available supply value (the paper rounds demand up to the next supply
    value to avoid oscillation between two adjacent levels).
    """

    def __init__(self, levels: Iterable[VFLevel]):
        sorted_levels: List[VFLevel] = sorted(levels, key=lambda l: l.frequency_mhz)
        if not sorted_levels:
            raise ValueError("VFTable requires at least one level")
        freqs = [l.frequency_mhz for l in sorted_levels]
        if len(set(freqs)) != len(freqs):
            raise ValueError("VFTable levels must have distinct frequencies")
        self._levels: Tuple[VFLevel, ...] = tuple(sorted_levels)
        self._freqs: Tuple[float, ...] = tuple(freqs)

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, index: int) -> VFLevel:
        return self._levels[index]

    def __iter__(self):
        return iter(self._levels)

    @property
    def levels(self) -> Sequence[VFLevel]:
        return self._levels

    @property
    def frequencies_mhz(self) -> Sequence[float]:
        return self._freqs

    # -- lookups ------------------------------------------------------------------
    @property
    def min_level(self) -> VFLevel:
        return self._levels[0]

    @property
    def max_level(self) -> VFLevel:
        return self._levels[-1]

    @property
    def max_index(self) -> int:
        return len(self._levels) - 1

    def index_of_frequency(self, frequency_mhz: float) -> int:
        """Return the index of the level with exactly this frequency."""
        i = bisect.bisect_left(self._freqs, frequency_mhz)
        if i < len(self._freqs) and self._freqs[i] == frequency_mhz:
            return i
        raise KeyError(f"no V-F level at {frequency_mhz} MHz")

    def clamp_index(self, index: int) -> int:
        """Clamp an arbitrary index into the valid level range."""
        return max(0, min(self.max_index, index))

    def step(self, index: int, delta: int) -> int:
        """Move ``delta`` levels from ``index``, clamped to the table."""
        return self.clamp_index(index + delta)

    def index_for_demand(self, demand_pus: float) -> int:
        """Smallest level whose supply covers ``demand_pus``.

        Demand is rounded *up* to the next supply value (paper section
        3.2.4) so a demand that sits between two levels settles at the
        higher one instead of oscillating.  Demands above the maximum
        supply saturate at the top level.
        """
        i = bisect.bisect_left(self._freqs, demand_pus)
        return self.clamp_index(i)

    def supply_at(self, index: int) -> float:
        """Per-core supply in PUs at level ``index``."""
        return self._levels[index].supply_pus


def vf_table_from_pairs(pairs: Iterable[Tuple[float, float]]) -> VFTable:
    """Build a :class:`VFTable` from ``(frequency_mhz, voltage_v)`` pairs."""
    return VFTable(VFLevel(f, v) for f, v in pairs)
