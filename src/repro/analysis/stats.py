"""Small statistics helpers for experiment results.

Simulation runs are deterministic given a configuration, but experiments
sweep configurations (workloads, seeds for synthetic chips, parameter
ablations); these helpers summarise such collections without dragging in
heavyweight dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one sample of measurements."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.n) if self.n > 0 else 0.0

    def confidence95(self) -> Tuple[float, float]:
        """Normal-approximation 95% interval around the mean."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)


def summarize(values: Iterable[float]) -> Summary:
    data = list(values)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        variance = 0.0
    return Summary(
        n=n, mean=mean, stdev=math.sqrt(variance), minimum=min(data), maximum=max(data)
    )


def relative_improvement(baseline: float, ours: float) -> float:
    """Fractional reduction of ``ours`` relative to ``baseline``.

    The paper's "34% improvement over HPM" metric: positive when ours is
    smaller.  A zero baseline with a zero measurement counts as no
    improvement; a zero baseline otherwise is undefined and raises.
    """
    if baseline == 0.0:
        if ours == 0.0:
            return 0.0
        raise ValueError("relative improvement undefined for zero baseline")
    return (baseline - ours) / baseline


def pairwise_improvements(
    metric_by_governor: Dict[str, Sequence[float]], ours: str = "PPM"
) -> Dict[str, float]:
    """Mean relative improvement of ``ours`` over every other governor.

    Expects each governor's per-workload metric vector (same ordering).
    """
    if ours not in metric_by_governor:
        raise KeyError(f"{ours!r} missing from results")
    our_mean = summarize(metric_by_governor[ours]).mean
    improvements: Dict[str, float] = {}
    for governor, values in metric_by_governor.items():
        if governor == ours:
            continue
        improvements[governor] = relative_improvement(
            summarize(values).mean, our_mean
        )
    return improvements


def dominance_count(
    metric_by_governor: Dict[str, Sequence[float]], ours: str = "PPM"
) -> Dict[str, int]:
    """Per-baseline count of workloads where ``ours`` is strictly better
    (smaller metric)."""
    our_values = metric_by_governor[ours]
    counts: Dict[str, int] = {}
    for governor, values in metric_by_governor.items():
        if governor == ours:
            continue
        if len(values) != len(our_values):
            raise ValueError("metric vectors must align")
        counts[governor] = sum(1 for a, b in zip(our_values, values) if a < b)
    return counts
