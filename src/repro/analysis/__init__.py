"""Post-processing: statistics and structured export of results."""

from .export import (
    comparative_to_csv,
    comparative_to_json,
    comparative_to_records,
    run_result_to_dict,
    write_comparative,
)
from .stats import (
    Summary,
    dominance_count,
    pairwise_improvements,
    relative_improvement,
    summarize,
)

__all__ = [
    "Summary",
    "comparative_to_csv",
    "comparative_to_json",
    "comparative_to_records",
    "dominance_count",
    "pairwise_improvements",
    "relative_improvement",
    "run_result_to_dict",
    "summarize",
    "write_comparative",
]
