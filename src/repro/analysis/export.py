"""Exporting experiment results to portable formats (dict/JSON/CSV).

The text tables in :mod:`repro.experiments.reporting` are for terminals;
downstream analysis (plotting the figures properly, aggregating across
machines) wants structured data.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from ..experiments.comparative import ComparativeResult
from ..experiments.harness import RunResult


def run_result_to_dict(result: RunResult) -> Dict[str, object]:
    """Flatten one run into JSON-ready primitives."""
    return {
        "governor": result.governor,
        "workload": result.workload,
        "duration_s": result.duration_s,
        "miss_fraction": result.miss_fraction,
        "mean_miss_fraction": result.mean_miss_fraction,
        "average_power_w": result.average_power_w,
        "peak_power_w": result.peak_power_w,
        "intra_migrations": result.intra_migrations,
        "inter_migrations": result.inter_migrations,
        "per_task_below": dict(result.per_task_below),
        "per_task_outside": dict(result.per_task_outside),
    }


def comparative_to_records(result: ComparativeResult) -> List[Dict[str, object]]:
    """One flat record per (governor, workload) cell."""
    records = []
    for governor, by_workload in result.runs.items():
        for workload, run in by_workload.items():
            record = run_result_to_dict(run)
            record["power_cap_w"] = result.power_cap_w
            records.append(record)
    return records


def comparative_to_json(result: ComparativeResult, indent: int = 2) -> str:
    return json.dumps(comparative_to_records(result), indent=indent, sort_keys=True)


_CSV_FIELDS = [
    "governor",
    "workload",
    "power_cap_w",
    "duration_s",
    "miss_fraction",
    "mean_miss_fraction",
    "average_power_w",
    "peak_power_w",
    "intra_migrations",
    "inter_migrations",
]


def comparative_to_csv(result: ComparativeResult) -> str:
    """CSV with one row per (governor, workload); per-task maps omitted."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS, extrasaction="ignore")
    writer.writeheader()
    for record in comparative_to_records(result):
        writer.writerow(record)
    return buffer.getvalue()


def write_comparative(result: ComparativeResult, path: str) -> str:
    """Write JSON or CSV depending on the file extension; returns path."""
    if path.endswith(".json"):
        payload = comparative_to_json(result)
    elif path.endswith(".csv"):
        payload = comparative_to_csv(result)
    else:
        raise ValueError("path must end in .json or .csv")
    with open(path, "w") as handle:
        handle.write(payload)
    return path
