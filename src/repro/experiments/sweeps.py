"""Generic parameter sweeps over the PPM configuration.

The ablation studies all share a shape: vary one knob, run a workload,
collect a few scalar outcomes.  ``sweep_parameter`` factors that out so
new ablations are three lines, and ``SweepResult`` renders/exports
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..core import MarketConfig, PPMConfig, PPMGovernor
from ..hw import tc2_chip
from ..sim import SimConfig, Simulation
from ..tasks import build_workload
from .parallel import PointSpec, execute_points
from .reporting import format_table


@dataclass
class SweepPoint:
    """One (parameter value, outcomes) row of a sweep."""

    value: object
    outcomes: Dict[str, float]


@dataclass
class SweepResult:
    """All rows of one sweep plus rendering helpers."""

    parameter: str
    workload: str
    points: List[SweepPoint] = field(default_factory=list)

    def outcome(self, value: object, key: str) -> float:
        for point in self.points:
            if point.value == value:
                return point.outcomes[key]
        raise KeyError(f"no sweep point with value {value!r}")

    def series(self, key: str) -> List[float]:
        return [p.outcomes[key] for p in self.points]

    def as_table(self) -> str:
        if not self.points:
            return f"(empty sweep over {self.parameter})"
        keys = sorted(self.points[0].outcomes)
        rows = [
            [p.value] + [f"{p.outcomes[k]:.4g}" for k in keys] for p in self.points
        ]
        return format_table(
            [self.parameter] + keys,
            rows,
            title=f"Sweep of {self.parameter} on {self.workload}",
        )


def default_outcomes(sim: Simulation, metrics) -> Dict[str, float]:
    """The standard outcome set: QoS, power, migrations, V-F churn."""
    intra, inter = sim.migrations.counts()
    return {
        "miss": metrics.any_task_miss_fraction(),
        "power_w": metrics.average_power_w(),
        "intra_migrations": float(intra),
        "inter_migrations": float(inter),
        "vf_transitions": float(
            sum(c.regulator.transitions for c in sim.chip.clusters)
        ),
    }


def apply_market_parameter(config: PPMConfig, name: str, value) -> PPMConfig:
    """A fresh PPMConfig with one (possibly market-level) field replaced."""
    if hasattr(config.market, name):
        return replace(config, market=replace(config.market, **{name: value}))
    if hasattr(config, name):
        return replace(config, **{name: value})
    raise AttributeError(f"PPMConfig has no parameter {name!r}")


def _sweep_point(
    name: str,
    value: object,
    workload: str,
    duration_s: float,
    warmup_s: float,
    base_config: Optional[PPMConfig],
    outcome_fn: Callable[[Simulation, object], Dict[str, float]],
    chip_factory: Callable,
) -> SweepPoint:
    """One sweep value, self-contained so it can run in a worker process."""
    base = base_config or PPMConfig()
    config = apply_market_parameter(base, name, value)
    sim = Simulation(
        chip_factory(),
        build_workload(workload),
        PPMGovernor(config),
        config=SimConfig(metrics_warmup_s=warmup_s),
    )
    metrics = sim.run(duration_s)
    return SweepPoint(value=value, outcomes=outcome_fn(sim, metrics))


def sweep_parameter(
    name: str,
    values: Sequence[object],
    workload: str = "m2",
    duration_s: float = 45.0,
    warmup_s: float = 15.0,
    base_config: Optional[PPMConfig] = None,
    outcome_fn: Callable[[Simulation, object], Dict[str, float]] = default_outcomes,
    chip_factory: Callable = tc2_chip,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Run ``workload`` under PPM for each value of parameter ``name``.

    ``name`` may be any field of :class:`PPMConfig` or its embedded
    :class:`MarketConfig` (e.g. ``tolerance``, ``savings_cap_fraction``,
    ``migrate_every``).

    With ``jobs`` > 1 the sweep values run in worker processes; custom
    ``outcome_fn``/``chip_factory`` callables must then be picklable
    (module-level functions, not lambdas).  Points are appended in value
    order either way.
    """
    result = SweepResult(parameter=name, workload=workload)
    specs = [
        PointSpec(
            fn=_sweep_point,
            label=f"{name}={value!r}",
            args=(
                name,
                value,
                workload,
                duration_s,
                warmup_s,
                base_config,
                outcome_fn,
                chip_factory,
            ),
        )
        for value in values
    ]
    result.points.extend(execute_points(specs, jobs=jobs))
    return result
