"""Fault campaigns: sweep injected faults and report resilience metrics.

A campaign drives one workload under several governors through the same
:class:`~repro.faults.FaultSchedule` and reports how each policy degrades
and recovers:

* QoS inside vs. outside the fault windows (the price of a fault);
* time-to-recover after the last window closes (hot-replug latency);
* TDP-violation seconds (how long the cap was broken, e.g. while the
  power sensor was blind);
* market audit violations (PPM only -- the books must survive faults).

Reports land in ``results/campaign_<fault>.txt`` (+ ``.json``) through
the existing reporting conventions, and the CLI exposes this as
``repro-experiments campaign --fault <kind>``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint import (
    CheckpointError,
    CheckpointManager,
    ReplayReport,
    atomic_write_text,
    read_checkpoint,
    read_journal,
    replay_from_checkpoint,
    resume_from,
    tick_records,
    write_journal,
)
from ..checkpoint.store import CHECKPOINT_GLOB_RE
from ..core.powerest import EstimationConfig
from ..faults import (
    COUNTER_FAULTS,
    FLEET_FAULTS,
    THERMAL_FAULTS,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    parse_fault_kind,
    periodic_faults,
)
from ..hw import ThermalConfig, ThermalParams, ThermalProtectionConfig, tc2_chip
from ..sim import SimConfig, Simulation
from ..tasks import build_workload
from .harness import capped_tdp_w, make_governor
from .parallel import PointSpec, execute_points

#: CLI spellings of the single-chip injectable fault kinds.  Fleet-tier
#: kinds (``FLEET_FAULTS``) address worker *processes*, which a one-chip
#: campaign does not have -- they are the ``fleet`` command's business
#: (see :mod:`repro.experiments.fleet`), so they are excluded here and
#: :func:`run_fault_campaign` refuses them with a pointer.
CAMPAIGN_FAULTS: Dict[str, FaultKind] = {
    kind.value: kind for kind in FaultKind if kind not in FLEET_FAULTS
}

#: Governors every campaign exercises by default.
DEFAULT_CAMPAIGN_GOVERNORS: Tuple[str, ...] = ("PPM", "HPM", "HL")

#: RC parameters for thermal campaigns and soak runs.  Chosen so a
#: fault-free big cluster settles well below the WARN threshold (~6 W
#: peak -> ~61 degC against warn_c = 70), which makes every trip-ladder
#: engagement attributable to the injected fault and guarantees full
#: recovery once the fault window closes.
CAMPAIGN_THERMAL_PARAMS = ThermalParams(
    resistance_k_per_w=6.0, capacitance_j_per_k=0.5, ambient_c=25.0
)


def campaign_thermal_config(chip) -> ThermalConfig:
    """Thermal tracking plus the full protection ladder for campaign sims."""
    return ThermalConfig(
        params={c.cluster_id: CAMPAIGN_THERMAL_PARAMS for c in chip.clusters},
        protection=ThermalProtectionConfig(),
    )


@dataclass
class CampaignRun:
    """Resilience summary of one governor under one fault schedule."""

    governor: str
    fault: str
    intensity: float
    miss_fraction_in_fault: float
    miss_fraction_outside_fault: float
    recovery_time_s: Optional[float]
    tdp_violation_s: float
    average_power_w: float
    audit_violations: int
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def qos_degradation(self) -> float:
        """Extra miss time a fault window costs over fault-free operation."""
        return self.miss_fraction_in_fault - self.miss_fraction_outside_fault


@dataclass
class CampaignResult:
    """One campaign: a fault kind swept across governors."""

    fault: str
    workload: str
    duration_s: float
    intensity: float
    tdp_w: float
    windows: List[Tuple[float, float]]
    runs: List[CampaignRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Fault campaign: {self.fault}  (workload {self.workload}, "
            f"{self.duration_s:.0f} s, intensity {self.intensity:.2f}, "
            f"TDP {self.tdp_w:.1f} W, {len(self.windows)} fault windows)"
        )
        columns = (
            f"{'governor':<10} {'miss in-fault':>13} {'miss outside':>13} "
            f"{'recovery (s)':>13} {'TDP-viol (s)':>13} {'avg W':>7} {'audits':>7}"
        )
        rows = []
        for run in self.runs:
            recovery = (
                f"{run.recovery_time_s:.2f}"
                if run.recovery_time_s is not None
                else "never"
            )
            rows.append(
                f"{run.governor:<10} {run.miss_fraction_in_fault:>13.3f} "
                f"{run.miss_fraction_outside_fault:>13.3f} {recovery:>13} "
                f"{run.tdp_violation_s:>13.2f} {run.average_power_w:>7.2f} "
                f"{run.audit_violations:>7d}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "fault": self.fault,
                "workload": self.workload,
                "duration_s": self.duration_s,
                "intensity": self.intensity,
                "tdp_w": self.tdp_w,
                "windows": self.windows,
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def build_campaign_schedule(
    fault: FaultKind,
    duration_s: float,
    warmup_s: float,
    intensity: float,
    chip,
) -> FaultSchedule:
    """Evenly spaced fault windows covering ``intensity`` of the run.

    Windows start after the warm-up (so fault-free QoS is measurable) and
    stop early enough to observe recovery.  Cluster-scoped faults target
    the fastest cluster -- losing the big cores is the hard case -- and
    sensor/task faults apply chip-wide.
    """
    if not 0.0 < intensity <= 0.8:
        raise ValueError("intensity must be in (0, 0.8]")
    target: Optional[str] = None
    if (
        fault
        in (
            FaultKind.HOTPLUG,
            FaultKind.DVFS_DROP,
            FaultKind.DVFS_DELAY,
            FaultKind.POWER_MODEL_DRIFT,
        )
        or fault in THERMAL_FAULTS
        or fault in COUNTER_FAULTS
    ):
        target = max(chip.clusters, key=lambda c: c.max_supply_pus).cluster_id
    period_s = 12.0 if fault is FaultKind.HOTPLUG else 8.0
    window_s = min(intensity * period_s, period_s - 1.0)
    start_s = warmup_s + 2.0
    until_s = max(start_s + 1e-9, duration_s - period_s * 0.5)
    kwargs = {}
    if fault is FaultKind.SENSOR_SPIKE:
        kwargs["magnitude"] = 4.0
    elif fault is FaultKind.COOLING_DEGRADED:
        kwargs["magnitude"] = 3.0  # heatsink sheds heat 3x more slowly
    elif fault is FaultKind.THERMAL_RUNAWAY:
        kwargs["magnitude"] = 12.0  # watts of unaccounted heat
    elif fault is FaultKind.COUNTER_BIAS:
        kwargs["magnitude"] = 3.0  # counters read 3x their true value
    elif fault is FaultKind.POWER_MODEL_DRIFT:
        kwargs["magnitude"] = 2.0  # draw ramps to 3x the model over a window
    return periodic_faults(
        fault,
        period_s=period_s,
        duration_s=window_s,
        until_s=until_s,
        start_s=start_s,
        target=target,
        **kwargs,
    )


def _campaign_identity(
    fault: str,
    workload: str,
    duration_s: float,
    warmup_s: float,
    intensity: float,
    seed: int,
    cap: float,
    governors: Sequence[str],
) -> Dict[str, object]:
    """Everything needed to rebuild a campaign run deterministically."""
    return {
        "fault": fault,
        "workload": workload,
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "intensity": intensity,
        "seed": seed,
        "tdp_w": cap,
        "governors": list(governors),
    }


def _campaign_schedule(identity: Dict[str, object]) -> FaultSchedule:
    return build_campaign_schedule(
        CAMPAIGN_FAULTS[identity["fault"]],
        identity["duration_s"],
        identity["warmup_s"],
        identity["intensity"],
        tc2_chip(),
    )


def _build_campaign_sim(
    name: str, identity: Dict[str, object], schedule: FaultSchedule
) -> Tuple[Simulation, FaultInjector]:
    """One governor's simulation, injector attached, ready to run."""
    chip = tc2_chip()
    tasks = build_workload(identity["workload"])
    governor = make_governor(name, power_cap_w=identity["tdp_w"])
    fault_kind = CAMPAIGN_FAULTS[identity["fault"]]
    thermal = (
        campaign_thermal_config(chip) if fault_kind in THERMAL_FAULTS else None
    )
    # Counter faults only bite a simulation that trades on counters, and
    # a drifting power model is only interesting when a fitted model
    # exists to drift away from -- attach the estimation pipeline for
    # both, exactly as thermal faults pull in thermal tracking.
    estimation = (
        EstimationConfig()
        if fault_kind in COUNTER_FAULTS
        or fault_kind is FaultKind.POWER_MODEL_DRIFT
        else None
    )
    sim = Simulation(
        chip,
        tasks,
        governor,
        config=SimConfig(
            metrics_warmup_s=identity["warmup_s"],
            seed=identity["seed"],
            audit=True,
            thermal=thermal,
            estimation=estimation,
        ),
    )
    injector = FaultInjector(sim, schedule).attach()
    return sim, injector


def _campaign_stream(index: int, name: str) -> str:
    """Checkpoint stream label for governor ``name`` at campaign ``index``."""
    return f"{index}-{name}"


def _point_dir(checkpoint_dir: str, index: int, name: str) -> str:
    """Per-point checkpoint subdirectory.

    Each (index, governor) point owns a private directory so concurrent
    workers never write into the same path, and a point's checkpoints,
    journal and final result travel together.
    """
    return os.path.join(checkpoint_dir, f"point_{_campaign_stream(index, name)}")


def _campaign_manifest_path(checkpoint_dir: str) -> str:
    return os.path.join(checkpoint_dir, "campaign.json")


def _write_campaign_manifest(
    checkpoint_dir: str, identity: Dict[str, object]
) -> None:
    os.makedirs(checkpoint_dir, exist_ok=True)
    atomic_write_text(
        _campaign_manifest_path(checkpoint_dir),
        json.dumps(
            {"magic": "repro-campaign", "version": 1, "identity": identity},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def _point_run_path(point_dir: str) -> str:
    return os.path.join(point_dir, "run.json")


def _point_journal_path(point_dir: str) -> str:
    return os.path.join(point_dir, "journal.json")


def _write_point_result(point_dir: str, run: CampaignRun) -> None:
    atomic_write_text(
        _point_run_path(point_dir),
        json.dumps({"run": asdict(run)}, indent=2, sort_keys=True) + "\n",
    )


def _read_point_result(point_dir: str) -> Optional[CampaignRun]:
    path = _point_run_path(point_dir)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return CampaignRun(**data["run"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(
            f"campaign point result {path!r} is unreadable: {exc}"
        )


def _latest_point_checkpoint(point_dir: str) -> Optional[str]:
    """Newest checkpoint inside one point directory, or None."""
    if not os.path.isdir(point_dir):
        return None
    best = None
    best_tick = -1
    for entry in os.listdir(point_dir):
        match = CHECKPOINT_GLOB_RE.match(entry)
        if not match:
            continue
        tick = int(match.group("tick"))
        if tick > best_tick:
            best_tick = tick
            best = entry
    return os.path.join(point_dir, best) if best is not None else None


def _attach_campaign_manager(
    sim: Simulation,
    point_dir: str,
    checkpoint_interval_s: float,
    identity: Dict[str, object],
    index: int,
    name: str,
) -> CheckpointManager:
    """Checkpoint this governor's run into its private point directory."""
    return CheckpointManager(
        point_dir,
        interval_s=checkpoint_interval_s,
        retention=3,
        stream=_campaign_stream(index, name),
        fingerprint_extra={"campaign": identity, "index": index, "governor": name},
        extra_payload={"campaign": identity, "index": index, "governor": name},
    ).attach(sim)


def _summarise_point(
    name: str,
    identity: Dict[str, object],
    windows: List[Tuple[float, float]],
    metrics,
    sim: Simulation,
    injector: FaultInjector,
    settle_s: float = 1.0,
) -> CampaignRun:
    last_window_end = max(
        (end for _, end in windows), default=sim.config.metrics_warmup_s
    )
    return CampaignRun(
        governor=name,
        fault=identity["fault"],
        intensity=identity["intensity"],
        miss_fraction_in_fault=metrics.miss_fraction_in_windows(windows),
        miss_fraction_outside_fault=metrics.miss_fraction_outside_windows(windows),
        recovery_time_s=metrics.recovery_time_s(
            after_s=last_window_end, settle_s=settle_s, dt=sim.dt
        ),
        tdp_violation_s=metrics.tdp_violation_seconds(identity["tdp_w"], sim.dt),
        average_power_w=metrics.average_power_w(),
        audit_violations=metrics.audit_violation_count(),
        fault_stats=injector.stats(),
    )


def _campaign_point(
    identity: Dict[str, object],
    index: int,
    name: str,
    checkpoint_dir: Optional[str],
    checkpoint_interval_s: float,
) -> CampaignRun:
    """Run one (campaign, governor) point end to end.

    Top-level and fed only picklable arguments, so it runs identically
    in-process (``jobs=1``) and inside a pool worker: the schedule, chip,
    workload and governor are all rebuilt from ``identity``, and all
    checkpoint artifacts stay inside this point's own subdirectory.
    """
    schedule = _campaign_schedule(identity)
    sim, injector = _build_campaign_sim(name, identity, schedule)
    manager = None
    point_dir = None
    if checkpoint_dir is not None:
        point_dir = _point_dir(checkpoint_dir, index, name)
        manager = _attach_campaign_manager(
            sim, point_dir, checkpoint_interval_s, identity, index, name
        )
    metrics = sim.run(identity["duration_s"])
    windows = list(schedule.windows())
    run = _summarise_point(name, identity, windows, metrics, sim, injector)
    if manager is not None:
        write_journal(
            _point_journal_path(point_dir),
            tick_records(metrics),
            manager.fingerprint,
            sim.dt,
        )
        _write_point_result(point_dir, run)
    return run


def run_fault_campaign(
    fault: str,
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "m2",
    duration_s: float = 40.0,
    warmup_s: float = 5.0,
    intensity: float = 0.3,
    seed: int = 1,
    power_cap_w: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval_s: float = 1.0,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Sweep one fault kind across ``governors`` and collect resilience data.

    Every governor replays the *same* schedule (faults live below the
    policy layer), under the Figure 6 power cap by default so the
    TDP-violation metric is meaningful.

    With ``checkpoint_dir`` set, a campaign manifest is written at the
    directory root and each governor's run writes periodic crash-consistent
    checkpoints, a per-tick telemetry journal and (on completion) its
    summary into its own ``point_<index>-<governor>/`` subdirectory, so a
    killed campaign can be continued with :func:`resume_fault_campaign`
    and verified with ``repro-experiments replay``.

    ``jobs`` (default ``$REPRO_JOBS`` or 1) runs governor points in
    worker processes; per-point subdirectories make the checkpoint
    streams disjoint, and results are merged in governor order so the
    report is identical to a serial campaign's.
    """
    kind = parse_fault_kind(fault)  # clean ValueError naming every valid kind
    if kind in FLEET_FAULTS:
        raise ValueError(
            f"fault kind {fault!r} targets fleet worker processes, which a "
            "single-chip campaign does not have; run it through "
            "'repro-experiments fleet --fleet-fault ...' instead"
        )
    cap = power_cap_w if power_cap_w is not None else capped_tdp_w()
    identity = _campaign_identity(
        fault, workload, duration_s, warmup_s, intensity, seed, cap, governors
    )
    schedule = _campaign_schedule(identity)
    result = CampaignResult(
        fault=fault,
        workload=workload,
        duration_s=duration_s,
        intensity=intensity,
        tdp_w=cap,
        windows=list(schedule.windows()),
    )
    if checkpoint_dir is not None:
        _write_campaign_manifest(checkpoint_dir, identity)
    specs = [
        PointSpec(
            fn=_campaign_point,
            label=f"campaign {fault}/{name}",
            args=(identity, index, name, checkpoint_dir, checkpoint_interval_s),
        )
        for index, name in enumerate(governors)
    ]
    result.runs.extend(execute_points(specs, jobs=jobs))
    return result


def _load_campaign_identity(checkpoint_dir: str) -> Dict[str, object]:
    """The campaign identity: from the manifest, else any checkpoint.

    The manifest is written before the first tick, so it survives any
    mid-campaign crash; the per-checkpoint fallback keeps resume working
    even if only a bare point directory was salvaged.
    """
    manifest_path = _campaign_manifest_path(checkpoint_dir)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("magic") != "repro-campaign":
                raise ValueError("not a campaign manifest")
            return data["identity"]
        except (OSError, ValueError, KeyError) as exc:
            raise CheckpointError(
                f"campaign manifest {manifest_path!r} is unreadable: {exc}"
            )
    for path in _iter_point_checkpoints(checkpoint_dir):
        envelope = read_checkpoint(path)
        extra = envelope.payload.get("extra")
        if isinstance(extra, dict) and "campaign" in extra:
            return extra["campaign"]
    raise CheckpointError(
        f"no campaign checkpoints found under {checkpoint_dir!r}; run "
        "'repro-experiments campaign --checkpoint-dir ...' first"
    )


def _iter_point_checkpoints(checkpoint_dir: str):
    """Every checkpoint under every point subdirectory, newest point first."""
    if not os.path.isdir(checkpoint_dir):
        return
    entries = []
    for entry in os.listdir(checkpoint_dir):
        if not entry.startswith("point_"):
            continue
        index_text = entry[len("point_"):].split("-", 1)[0]
        if not index_text.isdigit():
            continue
        entries.append((int(index_text), entry))
    for _, entry in sorted(entries, reverse=True):
        point_dir = os.path.join(checkpoint_dir, entry)
        path = _latest_point_checkpoint(point_dir)
        if path is not None:
            yield path


def _resume_point(
    identity: Dict[str, object],
    index: int,
    name: str,
    point_dir: str,
    checkpoint_interval_s: float,
) -> CampaignRun:
    """Finish one interrupted point from its newest checkpoint."""
    path = _latest_point_checkpoint(point_dir)
    assert path is not None
    schedule = _campaign_schedule(identity)
    injectors = []

    def factory():
        sim, injector = _build_campaign_sim(name, identity, schedule)
        injectors.append(injector)
        return sim

    sim, _ = resume_from(
        path,
        factory,
        fingerprint_extra={"campaign": identity, "index": index, "governor": name},
    )
    manager = _attach_campaign_manager(
        sim, point_dir, checkpoint_interval_s, identity, index, name
    )
    metrics = sim.run(identity["duration_s"] - sim.now)
    windows = list(schedule.windows())
    run = _summarise_point(name, identity, windows, metrics, sim, injectors[-1])
    write_journal(
        _point_journal_path(point_dir),
        tick_records(metrics),
        manager.fingerprint,
        sim.dt,
    )
    _write_point_result(point_dir, run)
    return run


def resume_fault_campaign(
    checkpoint_dir: str,
    checkpoint_interval_s: float = 1.0,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Continue a killed campaign from its per-point checkpoints.

    Re-reads the campaign identity (manifest, else embedded in any
    checkpoint), then brings every governor point to completion: points
    with a ``run.json`` are taken as-is, points with checkpoints resume
    mid-run from the newest one (validating the config/seed fingerprint),
    and points never started run from scratch -- in parallel when
    ``jobs`` > 1, since each owns a private subdirectory.  The returned
    :class:`CampaignResult` is tick-for-tick identical to an
    uninterrupted campaign's.
    """
    identity = _load_campaign_identity(checkpoint_dir)
    governors = list(identity["governors"])
    schedule = _campaign_schedule(identity)
    result = CampaignResult(
        fault=identity["fault"],
        workload=identity["workload"],
        duration_s=identity["duration_s"],
        intensity=identity["intensity"],
        tdp_w=identity["tdp_w"],
        windows=list(schedule.windows()),
    )
    runs: List[Optional[CampaignRun]] = [None] * len(governors)
    pending: List[Tuple[int, str]] = []
    for index, name in enumerate(governors):
        point_dir = _point_dir(checkpoint_dir, index, name)
        done = _read_point_result(point_dir)
        if done is not None:
            runs[index] = done
        elif _latest_point_checkpoint(point_dir) is not None:
            runs[index] = _resume_point(
                identity, index, name, point_dir, checkpoint_interval_s
            )
        else:
            pending.append((index, name))
    if pending:
        specs = [
            PointSpec(
                fn=_campaign_point,
                label=f"campaign {identity['fault']}/{name}",
                args=(identity, index, name, checkpoint_dir, checkpoint_interval_s),
            )
            for index, name in pending
        ]
        for (index, _), run in zip(pending, execute_points(specs, jobs=jobs)):
            runs[index] = run
    result.runs.extend(runs)
    return result


def _campaign_checkpoint_context(checkpoint_dir: str, checkpoint_path: Optional[str]):
    """Resolve a campaign checkpoint to (path, identity, index, governor)."""
    path = checkpoint_path
    if path is None:
        path = next(_iter_point_checkpoints(checkpoint_dir), None)
        if path is None:
            raise CheckpointError(
                f"no campaign checkpoints found under {checkpoint_dir!r}; run "
                "'repro-experiments campaign --checkpoint-dir ...' first"
            )
    envelope = read_checkpoint(path)
    extra = envelope.payload.get("extra")
    if not isinstance(extra, dict) or "campaign" not in extra:
        raise CheckpointError(
            f"checkpoint {path!r} was not written by a fault campaign "
            "(no embedded campaign identity)"
        )
    return path, extra["campaign"], extra["index"], extra["governor"]


def replay_campaign_checkpoint(
    checkpoint_dir: str, checkpoint_path: Optional[str] = None
) -> ReplayReport:
    """Replay one campaign checkpoint against its telemetry journal.

    Picks the newest checkpoint of the furthest-progressed point unless
    ``checkpoint_path`` names one, rebuilds that governor's simulation
    from the embedded campaign identity, restores and re-runs it to the
    journal's end, and reports either a clean match or the first
    divergent tick with field-level diffs.  Requires the journal written
    when that governor's run completed (``point_<index>-<governor>/
    journal.json``).
    """
    path, identity, index, name = _campaign_checkpoint_context(
        checkpoint_dir, checkpoint_path
    )
    journal_path = _point_journal_path(os.path.dirname(path))
    if not os.path.exists(journal_path):
        raise CheckpointError(
            f"no telemetry journal at {journal_path!r}; the campaign run that "
            "wrote this checkpoint has not completed (finish it with "
            "'repro-experiments resume' first)"
        )
    journal = read_journal(journal_path)
    schedule = _campaign_schedule(identity)

    def factory():
        sim, _ = _build_campaign_sim(name, identity, schedule)
        return sim

    return replay_from_checkpoint(
        path,
        factory,
        journal["records"],
        fingerprint_extra={"campaign": identity, "index": index, "governor": name},
    )


def write_campaign_report(
    result: CampaignResult, out_dir: str = "results"
) -> str:
    """Write the campaign table and JSON under ``out_dir``; returns the path.

    Both files are written atomically (temp + rename) so a crash mid-write
    never leaves a truncated report behind.
    """
    stem = os.path.join(out_dir, f"campaign_{result.fault}")
    atomic_write_text(stem + ".txt", result.as_table() + "\n")
    atomic_write_text(stem + ".json", result.to_json() + "\n")
    return stem + ".txt"


# ----------------------------------------------------------------------
# Chaos/soak harness: long compound-fault runs with live thermals
# ----------------------------------------------------------------------
#: Recovery tail kept fault-free at the end of every soak schedule.
SOAK_RECOVERY_TAIL_S = 10.0


@dataclass
class SoakRun:
    """Resilience summary of one governor over a compound-fault soak."""

    governor: str
    mttr_s: Optional[float]
    unrecovered_windows: int
    time_over_tcrit_s: float
    thermal_cycles: Dict[str, int]
    peak_temperature_c: Optional[float]
    supervisor: Dict[str, int]
    unrecovered_trips: int
    audit_violations: int
    miss_fraction_in_fault: float
    miss_fraction_outside_fault: float
    average_power_w: float
    fault_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class SoakResult:
    """One soak: every governor through the same compound-fault schedule."""

    workload: str
    duration_s: float
    seed: int
    tdp_w: float
    windows: List[Tuple[float, float]]
    runs: List[SoakRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Chaos soak  (workload {self.workload}, {self.duration_s:.0f} s, "
            f"seed {self.seed}, TDP {self.tdp_w:.1f} W, "
            f"{len(self.windows)} merged fault windows)"
        )
        columns = (
            f"{'governor':<10} {'MTTR (s)':>9} {'unrec win':>9} "
            f"{'t>Tcrit (s)':>11} {'cycles':>7} {'trips':>6} {'unrec':>6} "
            f"{'audits':>7} {'miss in':>8} {'miss out':>9} {'avg W':>7}"
        )
        rows = []
        for run in self.runs:
            mttr = f"{run.mttr_s:.2f}" if run.mttr_s is not None else "never"
            rows.append(
                f"{run.governor:<10} {mttr:>9} {run.unrecovered_windows:>9d} "
                f"{run.time_over_tcrit_s:>11.2f} "
                f"{sum(run.thermal_cycles.values()):>7d} "
                f"{run.supervisor.get('trips', 0):>6d} "
                f"{run.unrecovered_trips:>6d} {run.audit_violations:>7d} "
                f"{run.miss_fraction_in_fault:>8.3f} "
                f"{run.miss_fraction_outside_fault:>9.3f} "
                f"{run.average_power_w:>7.2f}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "tdp_w": self.tdp_w,
                "windows": self.windows,
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def build_soak_schedule(
    duration_s: float, warmup_s: float, chip
) -> FaultSchedule:
    """Staggered periodic compound faults: thermal + sensing + actuation.

    Five overlapping periodic trains, all starting after the warm-up and
    all ending :data:`SOAK_RECOVERY_TAIL_S` before the run does, so the
    final recovery is always observable.  Thermal model faults hit the
    fastest cluster (the one the trip ladder must eventually unplug);
    the thermal-sensor-stuck and power-sensor-dropout trains are
    chip-wide to also blind the supervisor and the watchdog.
    """
    if duration_s <= warmup_s + SOAK_RECOVERY_TAIL_S:
        raise ValueError(
            "soak duration must exceed warmup + "
            f"{SOAK_RECOVERY_TAIL_S:.0f} s recovery tail"
        )
    hot = max(chip.clusters, key=lambda c: c.max_supply_pus).cluster_id
    until_s = duration_s - SOAK_RECOVERY_TAIL_S
    trains = [
        # (kind, period, duration, stagger, target, kwargs)
        (FaultKind.THERMAL_RUNAWAY, 20.0, 6.0, 2.0, hot, {"magnitude": 12.0}),
        (FaultKind.COOLING_DEGRADED, 25.0, 8.0, 5.0, hot, {"magnitude": 3.0}),
        (FaultKind.THERMAL_SENSOR_STUCK, 15.0, 4.0, 3.0, None, {}),
        (FaultKind.SENSOR_DROPOUT, 10.0, 1.0, 1.0, None, {}),
        (FaultKind.DVFS_DROP, 13.0, 3.0, 4.0, hot, {}),
    ]
    schedule = FaultSchedule()
    for kind, period_s, window_s, stagger_s, target, kwargs in trains:
        start_s = warmup_s + stagger_s
        duration = min(window_s, until_s - start_s)
        # Bound the last *end*, not just the last start: every window must
        # close before the recovery tail so the tail stays fault-free.
        if duration <= 0 or start_s + duration > until_s:
            continue
        schedule = schedule.extended(
            periodic_faults(
                kind,
                period_s=period_s,
                duration_s=duration,
                until_s=until_s - duration + 1e-9,
                start_s=start_s,
                target=target,
                **kwargs,
            ).events
        )
    return schedule


def merged_windows(
    windows: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Coalesce overlapping fault windows into distinct outage episodes."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _soak_identity(
    workload: str,
    duration_s: float,
    warmup_s: float,
    seed: int,
    cap: float,
    governors: Sequence[str],
) -> Dict[str, object]:
    return {
        "workload": workload,
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "seed": seed,
        "tdp_w": cap,
        "governors": list(governors),
    }


def _soak_schedule(identity: Dict[str, object]) -> FaultSchedule:
    return build_soak_schedule(
        identity["duration_s"], identity["warmup_s"], tc2_chip()
    )


def _soak_point(identity: Dict[str, object], name: str) -> SoakRun:
    """Run one governor through the soak schedule; picklable for workers.

    Every soak sim runs with live thermal tracking, the full protection
    ladder and the market auditor enabled -- the point of a soak is to
    prove the invariants hold *under* compound faults, so auditing is not
    optional here the way it is for the performance sweeps.
    """
    schedule = _soak_schedule(identity)
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload(identity["workload"]),
        make_governor(name, power_cap_w=identity["tdp_w"]),
        config=SimConfig(
            metrics_warmup_s=identity["warmup_s"],
            seed=identity["seed"],
            audit=True,
            thermal=campaign_thermal_config(chip),
        ),
    )
    injector = FaultInjector(sim, schedule).attach()
    metrics = sim.run(identity["duration_s"])
    episodes = merged_windows(schedule.windows())
    recoveries = [
        metrics.recovery_time_s(after_s=end, settle_s=1.0, dt=sim.dt)
        for _, end in episodes
    ]
    recovered = [r for r in recoveries if r is not None]
    temp_peaks = [
        max(s.cluster_temperature_c.values())
        for s in metrics.samples
        if s.cluster_temperature_c
    ]
    supervisor = sim.thermal_supervisor
    return SoakRun(
        governor=name,
        mttr_s=(sum(recovered) / len(recovered)) if recovered else None,
        unrecovered_windows=sum(1 for r in recoveries if r is None),
        time_over_tcrit_s=sim.time_over_tcrit_s,
        thermal_cycles={
            cid: counter.cycles for cid, counter in sim.cycle_counters.items()
        },
        peak_temperature_c=max(temp_peaks) if temp_peaks else None,
        supervisor=supervisor.stats() if supervisor is not None else {},
        unrecovered_trips=(
            supervisor.unrecovered_trips if supervisor is not None else 0
        ),
        audit_violations=metrics.audit_violation_count(),
        miss_fraction_in_fault=metrics.miss_fraction_in_windows(episodes),
        miss_fraction_outside_fault=metrics.miss_fraction_outside_windows(
            episodes
        ),
        average_power_w=metrics.average_power_w(),
        fault_stats=injector.stats(),
    )


def run_soak(
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "m2",
    duration_s: float = 120.0,
    warmup_s: float = 5.0,
    seed: int = 1,
    power_cap_w: Optional[float] = None,
    jobs: Optional[int] = None,
) -> SoakResult:
    """Drive every governor through the same long compound-fault soak.

    Unlike single-kind campaigns, the soak overlaps thermal runaway,
    degraded cooling, stuck thermal zones, power-sensor dropouts and
    dropped DVFS writes, with the market auditor checking every round.
    The report answers the chaos-engineering questions: mean time to
    recover per outage episode (MTTR), seconds any cluster spent over
    ``tcrit_c``, thermal cycle counts, trip-ladder activity and whether
    the market books stayed consistent throughout.
    """
    cap = power_cap_w if power_cap_w is not None else capped_tdp_w()
    identity = _soak_identity(
        workload, duration_s, warmup_s, seed, cap, governors
    )
    schedule = _soak_schedule(identity)
    result = SoakResult(
        workload=workload,
        duration_s=duration_s,
        seed=seed,
        tdp_w=cap,
        windows=merged_windows(schedule.windows()),
    )
    specs = [
        PointSpec(
            fn=_soak_point,
            label=f"soak/{name}",
            args=(identity, name),
        )
        for name in governors
    ]
    result.runs.extend(execute_points(specs, jobs=jobs))
    return result


def write_soak_report(result: SoakResult, out_dir: str = "results") -> str:
    """Write the soak table and JSON under ``out_dir``; returns the path."""
    stem = os.path.join(out_dir, f"soak_{result.workload}")
    atomic_write_text(stem + ".txt", result.as_table() + "\n")
    atomic_write_text(stem + ".json", result.to_json() + "\n")
    return stem + ".txt"
