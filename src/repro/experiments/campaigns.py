"""Fault campaigns: sweep injected faults and report resilience metrics.

A campaign drives one workload under several governors through the same
:class:`~repro.faults.FaultSchedule` and reports how each policy degrades
and recovers:

* QoS inside vs. outside the fault windows (the price of a fault);
* time-to-recover after the last window closes (hot-replug latency);
* TDP-violation seconds (how long the cap was broken, e.g. while the
  power sensor was blind);
* market audit violations (PPM only -- the books must survive faults).

Reports land in ``results/campaign_<fault>.txt`` (+ ``.json``) through
the existing reporting conventions, and the CLI exposes this as
``repro-experiments campaign --fault <kind>``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultInjector, FaultKind, FaultSchedule, periodic_faults
from ..hw import tc2_chip
from ..sim import SimConfig, Simulation
from ..tasks import build_workload
from .harness import capped_tdp_w, make_governor

#: CLI spellings of the injectable fault kinds.
CAMPAIGN_FAULTS: Dict[str, FaultKind] = {
    kind.value: kind for kind in FaultKind
}

#: Governors every campaign exercises by default.
DEFAULT_CAMPAIGN_GOVERNORS: Tuple[str, ...] = ("PPM", "HPM", "HL")


@dataclass
class CampaignRun:
    """Resilience summary of one governor under one fault schedule."""

    governor: str
    fault: str
    intensity: float
    miss_fraction_in_fault: float
    miss_fraction_outside_fault: float
    recovery_time_s: Optional[float]
    tdp_violation_s: float
    average_power_w: float
    audit_violations: int
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def qos_degradation(self) -> float:
        """Extra miss time a fault window costs over fault-free operation."""
        return self.miss_fraction_in_fault - self.miss_fraction_outside_fault


@dataclass
class CampaignResult:
    """One campaign: a fault kind swept across governors."""

    fault: str
    workload: str
    duration_s: float
    intensity: float
    tdp_w: float
    windows: List[Tuple[float, float]]
    runs: List[CampaignRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Fault campaign: {self.fault}  (workload {self.workload}, "
            f"{self.duration_s:.0f} s, intensity {self.intensity:.2f}, "
            f"TDP {self.tdp_w:.1f} W, {len(self.windows)} fault windows)"
        )
        columns = (
            f"{'governor':<10} {'miss in-fault':>13} {'miss outside':>13} "
            f"{'recovery (s)':>13} {'TDP-viol (s)':>13} {'avg W':>7} {'audits':>7}"
        )
        rows = []
        for run in self.runs:
            recovery = (
                f"{run.recovery_time_s:.2f}"
                if run.recovery_time_s is not None
                else "never"
            )
            rows.append(
                f"{run.governor:<10} {run.miss_fraction_in_fault:>13.3f} "
                f"{run.miss_fraction_outside_fault:>13.3f} {recovery:>13} "
                f"{run.tdp_violation_s:>13.2f} {run.average_power_w:>7.2f} "
                f"{run.audit_violations:>7d}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "fault": self.fault,
                "workload": self.workload,
                "duration_s": self.duration_s,
                "intensity": self.intensity,
                "tdp_w": self.tdp_w,
                "windows": self.windows,
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def build_campaign_schedule(
    fault: FaultKind,
    duration_s: float,
    warmup_s: float,
    intensity: float,
    chip,
) -> FaultSchedule:
    """Evenly spaced fault windows covering ``intensity`` of the run.

    Windows start after the warm-up (so fault-free QoS is measurable) and
    stop early enough to observe recovery.  Cluster-scoped faults target
    the fastest cluster -- losing the big cores is the hard case -- and
    sensor/task faults apply chip-wide.
    """
    if not 0.0 < intensity <= 0.8:
        raise ValueError("intensity must be in (0, 0.8]")
    target: Optional[str] = None
    if fault in (FaultKind.HOTPLUG, FaultKind.DVFS_DROP, FaultKind.DVFS_DELAY):
        target = max(chip.clusters, key=lambda c: c.max_supply_pus).cluster_id
    period_s = 12.0 if fault is FaultKind.HOTPLUG else 8.0
    window_s = min(intensity * period_s, period_s - 1.0)
    start_s = warmup_s + 2.0
    until_s = max(start_s + 1e-9, duration_s - period_s * 0.5)
    kwargs = {"magnitude": 4.0} if fault is FaultKind.SENSOR_SPIKE else {}
    return periodic_faults(
        fault,
        period_s=period_s,
        duration_s=window_s,
        until_s=until_s,
        start_s=start_s,
        target=target,
        **kwargs,
    )


def run_fault_campaign(
    fault: str,
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "m2",
    duration_s: float = 40.0,
    warmup_s: float = 5.0,
    intensity: float = 0.3,
    seed: int = 1,
    power_cap_w: Optional[float] = None,
) -> CampaignResult:
    """Sweep one fault kind across ``governors`` and collect resilience data.

    Every governor replays the *same* schedule (faults live below the
    policy layer), under the Figure 6 power cap by default so the
    TDP-violation metric is meaningful.
    """
    kind = CAMPAIGN_FAULTS.get(fault)
    if kind is None:
        raise KeyError(
            f"unknown fault {fault!r}; choose from {sorted(CAMPAIGN_FAULTS)}"
        )
    cap = power_cap_w if power_cap_w is not None else capped_tdp_w()
    schedule = build_campaign_schedule(
        kind, duration_s, warmup_s, intensity, tc2_chip()
    )
    result = CampaignResult(
        fault=fault,
        workload=workload,
        duration_s=duration_s,
        intensity=intensity,
        tdp_w=cap,
        windows=list(schedule.windows()),
    )
    settle_s = 1.0
    for name in governors:
        chip = tc2_chip()
        tasks = build_workload(workload)
        governor = make_governor(name, power_cap_w=cap)
        sim = Simulation(
            chip,
            tasks,
            governor,
            config=SimConfig(
                metrics_warmup_s=warmup_s, seed=seed, audit=True
            ),
        )
        injector = FaultInjector(sim, schedule).attach()
        metrics = sim.run(duration_s)
        last_window_end = max((end for _, end in result.windows), default=warmup_s)
        result.runs.append(
            CampaignRun(
                governor=name,
                fault=fault,
                intensity=intensity,
                miss_fraction_in_fault=metrics.miss_fraction_in_windows(
                    result.windows
                ),
                miss_fraction_outside_fault=metrics.miss_fraction_outside_windows(
                    result.windows
                ),
                recovery_time_s=metrics.recovery_time_s(
                    after_s=last_window_end, settle_s=settle_s, dt=sim.dt
                ),
                tdp_violation_s=metrics.tdp_violation_seconds(cap, sim.dt),
                average_power_w=metrics.average_power_w(),
                audit_violations=metrics.audit_violation_count(),
                fault_stats=injector.stats(),
            )
        )
    return result


def write_campaign_report(
    result: CampaignResult, out_dir: str = "results"
) -> str:
    """Write the campaign table and JSON under ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"campaign_{result.fault}")
    with open(stem + ".txt", "w") as handle:
        handle.write(result.as_table())
        handle.write("\n")
    with open(stem + ".json", "w") as handle:
        handle.write(result.to_json())
        handle.write("\n")
    return stem + ".txt"
