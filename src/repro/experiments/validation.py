"""Programmatic validation of the reproduction's claims.

EXPERIMENTS.md asserts a set of shape claims against the paper; this
module re-checks them mechanically so a refactor that silently breaks a
reproduced behaviour fails loudly (``repro-experiments validate``).

Each claim is a named check returning pass/fail plus the measured
evidence.  ``quick`` mode uses short runs (tens of seconds of wall
clock); full mode uses the benchmark-grade durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import ChipPowerState
from .comparative import run_comparative
from .priorities import run_priority_experiment
from .reporting import format_table
from .running_examples import table1, table2, table3
from .savings import run_savings_experiment
from .scalability import measure_overhead


@dataclass
class ClaimResult:
    """Outcome of one validated claim."""

    claim_id: str
    description: str
    passed: bool
    evidence: str


@dataclass
class ValidationReport:
    results: List[ClaimResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def as_table(self) -> str:
        rows = [
            [r.claim_id, "PASS" if r.passed else "FAIL", r.description, r.evidence]
            for r in self.results
        ]
        return format_table(
            ["claim", "status", "description", "evidence"],
            rows,
            title="Reproduction claim validation",
        )


def _check_table1() -> ClaimResult:
    scenario, _ = table1()
    row = scenario.rows[1]
    ok = (
        abs(row.supplies["ta"] - 200.0) < 1.0
        and abs(row.supplies["tb"] - 100.0) < 1.0
        and abs(row.bids["ta"] - 4.0 / 3.0) < 0.01
    )
    return ClaimResult(
        "T1",
        "Table 1 bidding dynamics reproduce cell-for-cell",
        ok,
        f"round2 supplies ({row.supplies['ta']:.0f}, {row.supplies['tb']:.0f})",
    )


def _check_table2() -> ClaimResult:
    scenario, _ = table2()
    ok = scenario.rows[2].core_supply == 300.0 and scenario.rows[3].core_supply == 400.0
    return ClaimResult(
        "T2",
        "Table 2 inflation raises supply 300->400 with a one-round freeze",
        ok,
        f"supplies {[r.core_supply for r in scenario.rows]}",
    )


def _check_table3() -> ClaimResult:
    scenario, _ = table3(rounds=40)
    final = scenario.rows[-1]
    states = {r.state for r in scenario.rows}
    ok = (
        final.state == "threshold"
        and final.core_supply == 500.0
        and "emergency" in states
        and abs(final.supplies["ta"] - 300.0) < 10.0
    )
    return ClaimResult(
        "T3",
        "Table 3 stabilises in the threshold state at 500 PU, priorities honoured",
        ok,
        f"final ({final.state}, {final.core_supply:.0f} PU, "
        f"s_ta={final.supplies['ta']:.0f})",
    )


def _check_comparative(duration_s: float, warmup_s: float) -> List[ClaimResult]:
    result = run_comparative(duration_s=duration_s, warmup_s=warmup_s)
    miss = {g: result.mean_miss(g) for g in ("PPM", "HPM", "HL")}
    power = {g: result.mean_power(g) for g in ("PPM", "HPM", "HL")}
    heavy = ("h1", "h2", "h3")
    table = result.miss_table()
    heavy_means = {
        g: sum(table[g][w] for w in heavy) / 3 for g in ("PPM", "HPM", "HL")
    }
    return [
        ClaimResult(
            "F4a",
            "Figure 4: PPM has the lowest mean QoS miss",
            miss["PPM"] < miss["HPM"] and miss["PPM"] < miss["HL"],
            f"means PPM={miss['PPM']:.3f} HPM={miss['HPM']:.3f} HL={miss['HL']:.3f}",
        ),
        ClaimResult(
            "F4b",
            "Figure 4: HL collapses on heavy sets",
            heavy_means["HL"] > 0.5 and heavy_means["HL"] > heavy_means["PPM"],
            f"heavy means HL={heavy_means['HL']:.2f} PPM={heavy_means['PPM']:.2f}",
        ),
        ClaimResult(
            "F5",
            "Figure 5: HL burns the most power; PPM does not exceed HPM",
            power["HL"] > power["PPM"] and power["HL"] > power["HPM"]
            and power["PPM"] <= power["HPM"] + 0.3,
            f"powers PPM={power['PPM']:.2f} HPM={power['HPM']:.2f} HL={power['HL']:.2f}",
        ),
    ]


def _check_tdp(duration_s: float, warmup_s: float) -> List[ClaimResult]:
    result = run_comparative(
        power_cap_w=4.0, duration_s=duration_s, warmup_s=warmup_s
    )
    improvement_hpm = result.improvement_over("HPM")
    improvement_hl = result.improvement_over("HL")
    return [
        ClaimResult(
            "F6a",
            "Figure 6: PPM beats both baselines under the 4 W cap",
            improvement_hpm > 0.0 and improvement_hl > 0.0,
            f"improvements {improvement_hpm:.0%} vs HPM, {improvement_hl:.0%} vs HL",
        ),
        ClaimResult(
            "F6b",
            "Figure 6: every governor respects the cap on average",
            all(result.mean_power(g) <= 4.3 for g in ("PPM", "HPM", "HL")),
            f"mean powers {[round(result.mean_power(g), 2) for g in ('PPM', 'HPM', 'HL')]}",
        ),
    ]


def _check_priorities(duration_s: float) -> ClaimResult:
    prio = run_priority_experiment(7, 1, duration_s=duration_s)
    ok = (
        prio.swaptions_outside < 0.15
        and prio.bodytrack_outside > 3 * prio.swaptions_outside
    )
    return ClaimResult(
        "F7",
        "Figure 7: priority 7 protects swaptions, bodytrack absorbs the misses",
        ok,
        f"outside: swaptions {prio.swaptions_outside:.1%}, "
        f"bodytrack {prio.bodytrack_outside:.1%}",
    )


def _check_savings(dormant_s: float, active_s: float) -> ClaimResult:
    result = run_savings_experiment(dormant_s=dormant_s, active_s=active_s, tail_s=30.0)
    dormant = result.x264_normalized_hr(10.0, dormant_s)
    early = result.x264_normalized_hr(dormant_s + 1.0, dormant_s + 15.0)
    late = result.x264_normalized_hr(
        dormant_s + active_s - 25.0, dormant_s + active_s
    )
    ok = dormant > 1.03 and early > late and late < 1.0
    return ClaimResult(
        "F8",
        "Figure 8: bank while dormant, sustain from savings, collapse at exhaustion",
        ok,
        f"x264 hr dormant={dormant:.2f} early={early:.2f} late={late:.2f}",
    )


def _check_scalability() -> ClaimResult:
    small = measure_overhead(2, 4, 8, invocations=3)
    large = measure_overhead(256, 16, 32, invocations=3)
    ok = large.avg_overhead_ms > small.avg_overhead_ms and large.avg_overhead_pct < 25.0
    return ClaimResult(
        "T7",
        "Table 7: overhead grows with T x V yet stays a small interval fraction",
        ok,
        f"{small.total_tasks} tasks: {small.avg_overhead_ms:.2f} ms; "
        f"{large.total_tasks} tasks: {large.avg_overhead_ms:.2f} ms",
    )


def validate_reproduction(quick: bool = True) -> ValidationReport:
    """Run every claim check; ``quick`` trades precision for wall clock."""
    duration = 45.0 if quick else 120.0
    warmup = 15.0 if quick else 30.0
    report = ValidationReport()
    report.results.append(_check_table1())
    report.results.append(_check_table2())
    report.results.append(_check_table3())
    report.results.extend(_check_comparative(duration, warmup))
    report.results.extend(_check_tdp(duration, warmup))
    report.results.append(_check_priorities(90.0 if quick else 300.0))
    report.results.append(
        _check_savings(60.0 if quick else 100.0, 100.0 if quick else 200.0)
    )
    report.results.append(_check_scalability())
    return report
