"""The priority experiment: Figure 7.

The paper schedules two demanding tasks on one core with load balancing
and task migration disabled, and compares equal priorities (Figure 7a)
against raising swaptions to priority 7 (Figure 7b).  With equal
priorities both tasks spend roughly a third of the time outside their
performance range; with priority 7, swaptions drops to ~7.5% while
bodytrack rises to ~57%.

The shape under reproduction: the shared core cannot always cover the
summed demand, so (a) equal priorities -> both tasks suffer comparably,
and (b) a 7:1 priority ratio -> the high-priority task is essentially
always served while the low-priority one absorbs the entire shortfall.
The absolute percentages depend on how hard the pair oversubscribes the
core; the experiment sizes the pair to oscillate around the core's
capacity as the paper's native-input pair does on the A7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core import MarketConfig, PPMConfig, PPMGovernor
from ..hw import tc2_chip
from ..sim import Simulation
from ..tasks import (
    BenchmarkProfile,
    ConstantPhase,
    SinusoidalPhases,
    Task,
    default_hr_range,
)
from .harness import RunResult, run_system
from .reporting import format_table, sparkline

#: Demands sized against the A7 core's 1000 PU maximum so that the pair
#: oversubscribes the core roughly half of the time (the contention level
#: Figure 7a exhibits).
SWAPTIONS_DEMAND_PUS = 540.0
BODYTRACK_DEMAND_PUS = 470.0
BODYTRACK_AMPLITUDE = 0.3
BODYTRACK_PERIOD_S = 20.0


def _swaptions(priority: int) -> Task:
    """A steady Monte-Carlo pricer (swaptions native)."""
    nominal_hr = 10.0
    profile = BenchmarkProfile(
        name="swaptions",
        input_label="native",
        nominal_hr=nominal_hr,
        hr_range=default_hr_range(nominal_hr),
        cost_pu_s_per_beat_by_type={
            "A7": SWAPTIONS_DEMAND_PUS / nominal_hr,
            "A15": SWAPTIONS_DEMAND_PUS / nominal_hr / 1.9,
        },
        phases=ConstantPhase(),
        # HRM-adaptive tasks self-pace at the top of their goal range.
        work_limit_factor=1.05,
    )
    return Task(profile=profile, priority=priority, name="swaptions_native")


def _bodytrack(priority: int) -> Task:
    """A phasic per-frame tracker (bodytrack native)."""
    nominal_hr = 30.0
    profile = BenchmarkProfile(
        name="bodytrack",
        input_label="native",
        nominal_hr=nominal_hr,
        hr_range=default_hr_range(nominal_hr),
        cost_pu_s_per_beat_by_type={
            "A7": BODYTRACK_DEMAND_PUS / nominal_hr,
            "A15": BODYTRACK_DEMAND_PUS / nominal_hr / 1.8,
        },
        phases=SinusoidalPhases(
            period_s=BODYTRACK_PERIOD_S, amplitude=BODYTRACK_AMPLITUDE
        ),
        work_limit_factor=1.05,
    )
    return Task(profile=profile, priority=priority, name="bodytrack_native")


@dataclass
class PriorityResult:
    """Outcome of one Figure 7 sub-experiment."""

    swaptions_priority: int
    bodytrack_priority: int
    run: RunResult
    series: Dict[str, Tuple[list, list]]  #: task -> (times, normalised hr)

    @property
    def swaptions_outside(self) -> float:
        return self.run.per_task_outside["swaptions_native"]

    @property
    def bodytrack_outside(self) -> float:
        return self.run.per_task_outside["bodytrack_native"]


def run_priority_experiment(
    swaptions_priority: int = 1,
    bodytrack_priority: int = 1,
    duration_s: float = 300.0,
    warmup_s: float = 10.0,
) -> PriorityResult:
    """Two tasks pinned on one LITTLE core, LBT disabled (paper 5.4)."""
    swaptions = _swaptions(swaptions_priority)
    bodytrack = _bodytrack(bodytrack_priority)
    governor = PPMGovernor(
        PPMConfig(
            market=MarketConfig(),
            enable_load_balancing=False,
            enable_migration=False,
        )
    )

    def pin(sim: Simulation) -> None:
        core = sim.chip.cluster("little").cores[0]
        sim.place(swaptions, core)
        sim.place(bodytrack, core)

    run = run_system(
        [swaptions, bodytrack],
        governor,
        duration_s=duration_s,
        warmup_s=warmup_s,
        placement=pin,
        keep_metrics=True,
        governor_name="PPM",
        workload_name="fig7",
    )
    assert run.metrics is not None
    series = {
        task.name: run.metrics.heart_rate_series(
            task.name, normalize_by=task.target_hr
        )
        for task in (swaptions, bodytrack)
    }
    return PriorityResult(
        swaptions_priority=swaptions_priority,
        bodytrack_priority=bodytrack_priority,
        run=run,
        series=series,
    )


def figure7(
    duration_s: float = 300.0, warmup_s: float = 10.0
) -> Tuple[PriorityResult, PriorityResult, str]:
    """Both Figure 7 sub-experiments plus a text rendering."""
    equal = run_priority_experiment(1, 1, duration_s=duration_s, warmup_s=warmup_s)
    prio = run_priority_experiment(7, 1, duration_s=duration_s, warmup_s=warmup_s)
    rows = [
        [
            "7a (prio 1:1)",
            f"{equal.swaptions_outside * 100:.1f}%",
            f"{equal.bodytrack_outside * 100:.1f}%",
        ],
        [
            "7b (prio 7:1)",
            f"{prio.swaptions_outside * 100:.1f}%",
            f"{prio.bodytrack_outside * 100:.1f}%",
        ],
    ]
    text = format_table(
        ["experiment", "swaptions outside range", "bodytrack outside range"],
        rows,
        title="Figure 7: time outside the [0.95, 1.05] normalised goal range",
    )
    text += "\n7b swaptions hr: " + sparkline(prio.series["swaptions_native"][1])
    text += "\n7b bodytrack hr: " + sparkline(prio.series["bodytrack_native"][1])
    return equal, prio, text
