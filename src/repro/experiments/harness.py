"""Shared experiment harness: build a system, run it, summarise it.

Mirrors the paper's measurement protocol: each data point is one run of a
workload set under one governor; summary statistics exclude a warm-up
prefix (start-up placement and ramping are not what the figures report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import MarketConfig, PPMConfig, PPMGovernor
from ..governors import HLGovernor, HPMGovernor
from ..hw import TC2_CAPPED_TDP_W, tc2_chip
from ..sim import MetricsCollector, SimConfig, Simulation
from ..tasks import Task, build_workload

#: Governor names used across the comparative experiments.
GOVERNOR_NAMES = ("PPM", "HPM", "HL")

#: Default run lengths.  The paper runs each set for ~300 s on the board;
#: 120 s of simulated time with a 30 s warm-up reproduces the steady-state
#: statistics at a fraction of the wall-clock cost, and every experiment
#: accepts explicit durations for full-length runs.
DEFAULT_DURATION_S = 120.0
DEFAULT_WARMUP_S = 30.0


def make_governor(name: str, power_cap_w: Optional[float] = None):
    """Instantiate a governor by name, optionally TDP-constrained.

    For PPM the cap becomes the market's ``Wtdp`` (with the buffer zone
    ``Wth = Wtdp - 0.5`` of the paper's running example); HPM gets it as
    the setpoint of its outer power loop; HL switches the big cluster off
    above it, per the paper's methodology.
    """
    if name == "PPM":
        market = MarketConfig(wtdp=power_cap_w) if power_cap_w else MarketConfig()
        return PPMGovernor(PPMConfig(market=market))
    if name == "HPM":
        return HPMGovernor(power_cap_w=power_cap_w)
    if name == "HL":
        return HLGovernor(power_cap_w=power_cap_w)
    raise KeyError(f"unknown governor {name!r}; choose from {GOVERNOR_NAMES}")


@dataclass
class RunResult:
    """Summary of one simulation run."""

    governor: str
    workload: str
    duration_s: float
    miss_fraction: float  #: any-task below-minimum time fraction (Figs 4/6)
    mean_miss_fraction: float  #: mean of per-task below fractions
    average_power_w: float  #: Figure 5
    peak_power_w: float
    intra_migrations: int
    inter_migrations: int
    per_task_below: Dict[str, float] = field(default_factory=dict)
    per_task_outside: Dict[str, float] = field(default_factory=dict)
    audit_violations: int = 0  #: market-invariant violations (strict audit)
    metrics: Optional[MetricsCollector] = None


def run_system(
    tasks: Sequence[Task],
    governor,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    chip=None,
    dt: float = 0.01,
    placement: Optional[Callable[[Simulation], None]] = None,
    keep_metrics: bool = False,
    governor_name: str = "?",
    workload_name: str = "?",
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval_s: float = 1.0,
    strict_audit: bool = False,
) -> RunResult:
    """Run ``tasks`` under ``governor`` and summarise the steady state.

    Args:
        placement: Optional hook that pins tasks to cores before the first
            tick (the Figure 7/8 experiments pin two tasks to one core).
        keep_metrics: Attach the full tick-level collector to the result
            (needed for time-series figures; costs memory).
        checkpoint_dir: When set, write periodic crash-consistent
            checkpoints of the run there (see :mod:`repro.checkpoint`),
            every ``checkpoint_interval_s`` simulated seconds.
        strict_audit: Run the market auditor every round and report the
            violation count on the result (off by default: auditing every
            tick costs throughput the performance sweeps care about).
    """
    chip = chip or tc2_chip()
    sim = Simulation(
        chip,
        tasks,
        governor,
        config=SimConfig(
            dt=dt, metrics_warmup_s=warmup_s, audit=strict_audit
        ),
    )
    if placement is not None:
        placement(sim)
    if checkpoint_dir is not None:
        from ..checkpoint import CheckpointManager

        CheckpointManager(
            checkpoint_dir, interval_s=checkpoint_interval_s
        ).attach(sim)
    metrics = sim.run(duration_s)
    intra, inter = sim.migrations.counts()
    return RunResult(
        governor=governor_name,
        workload=workload_name,
        duration_s=duration_s,
        miss_fraction=metrics.any_task_miss_fraction(),
        mean_miss_fraction=metrics.mean_miss_fraction(),
        average_power_w=metrics.average_power_w(),
        peak_power_w=metrics.peak_power_w(),
        intra_migrations=intra,
        inter_migrations=inter,
        per_task_below={
            t.name: metrics.task_below_fraction(t.name) for t in tasks
        },
        per_task_outside={
            t.name: metrics.task_outside_range_fraction(t.name) for t in tasks
        },
        audit_violations=metrics.audit_violation_count(),
        metrics=metrics if keep_metrics else None,
    )


def run_workload(
    set_id: str,
    governor_name: str,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    power_cap_w: Optional[float] = None,
    strict_audit: bool = False,
) -> RunResult:
    """One comparative-study data point: workload set x governor."""
    tasks = build_workload(set_id)
    governor = make_governor(governor_name, power_cap_w=power_cap_w)
    return run_system(
        tasks,
        governor,
        duration_s=duration_s,
        warmup_s=warmup_s,
        governor_name=governor_name,
        workload_name=set_id,
        strict_audit=strict_audit,
    )


def capped_tdp_w() -> float:
    """The artificially capped budget of the Figure 6 study (4 W)."""
    return TC2_CAPPED_TDP_W
