"""Plain-text rendering of experiment results (tables and series).

The paper's figures are bar charts and time series; a text harness can't
draw them, so every experiment renders to aligned ASCII tables -- the same
rows/columns/series the figures plot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_percent_table(
    title: str,
    column_keys: Sequence[str],
    series: Dict[str, Dict[str, float]],
    value_suffix: str = "%",
    scale: float = 100.0,
) -> str:
    """Render {series -> {column -> value}} with percentage formatting.

    This is the shape of Figures 4-6: one row per governor, one column per
    workload set, plus a mean column.
    """
    headers = ["governor"] + list(column_keys) + ["mean"]
    rows = []
    for name, values in series.items():
        cells: List[object] = [name]
        row_vals = [values.get(k, float("nan")) for k in column_keys]
        cells.extend(f"{v * scale:.1f}{value_suffix}" for v in row_vals)
        mean = sum(row_vals) / len(row_vals) if row_vals else float("nan")
        cells.append(f"{mean * scale:.1f}{value_suffix}")
        rows.append(cells)
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Down-sample a series into a unicode sparkline (for time series)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        stride = len(values) / width
        values = [
            values[min(len(values) - 1, int(i * stride))] for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)
