"""Fleet campaigns: many chips, one grid budget, injected process faults.

This is the experiment-facing wrapper around :mod:`repro.fleet`: it
builds a fleet of heterogeneous chips (workloads and regions cycled
deterministically from the seed), runs the supervised grid-budget market
for a number of epochs -- optionally under a schedule of worker
kills/stalls/message loss -- and renders the deterministic campaign
report.  ``resume_fleet_campaign`` continues an interrupted campaign
from its fleet manifest; a fault-free campaign resumed this way emits a
byte-identical report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..fleet import (
    ChipSpec,
    FleetBudgetConfig,
    FleetConfig,
    FleetFaultSchedule,
    FleetSupervisor,
    RetryPolicy,
    parse_fleet_fault,
)

#: Relative electricity price per region (see PAPERS.md: performance-
#: based pricing in geo-distributed clouds).  Cheap regions clear more
#: watts per unit of demand under scarcity.
DEFAULT_REGION_PRICES: Dict[str, float] = {
    "ap-south": 0.9,
    "eu-west": 1.15,
    "us-east": 1.0,
}

#: Workload sets cycled across the fleet's chips.
DEFAULT_FLEET_WORKLOADS: Tuple[str, ...] = ("m1", "m2", "l1", "l2")

#: Default grid budget per chip; deliberately scarcer than the 8 W chip
#: TDP so the auction has something to arbitrate.
DEFAULT_BUDGET_PER_CHIP_W = 3.0

#: Where fleet campaign state (checkpoints, manifest) lives by default.
DEFAULT_FLEET_DIR = "results/fleet"


def build_fleet_config(
    chips: int = 8,
    epochs: int = 6,
    epoch_s: float = 0.5,
    grid_budget_w: Optional[float] = None,
    seed: int = 1,
    governor: str = "PPM",
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
    regions: Optional[Sequence[str]] = None,
    retry: Optional[RetryPolicy] = None,
    hysteresis_epochs: int = 1,
) -> FleetConfig:
    """A deterministic fleet: chip ids, seeds, workloads, regions.

    Chip ``i`` is ``chip0i`` with seed ``seed + i``, its workload and
    region cycled from the given sequences, so the same arguments always
    name the identical fleet (and hence the identical fingerprint).
    """
    if chips < 1:
        raise ValueError("a fleet needs at least one chip")
    region_names = tuple(regions or sorted(DEFAULT_REGION_PRICES))
    specs = tuple(
        ChipSpec(
            chip_id=f"chip{i:02d}",
            workload=workloads[i % len(workloads)],
            governor=governor,
            seed=seed + i,
            region=region_names[i % len(region_names)],
        )
        for i in range(chips)
    )
    budget = FleetBudgetConfig(
        grid_budget_w=(
            grid_budget_w
            if grid_budget_w is not None
            else chips * DEFAULT_BUDGET_PER_CHIP_W
        ),
        region_prices=dict(DEFAULT_REGION_PRICES),
        hysteresis_epochs=hysteresis_epochs,
    )
    kwargs: Dict[str, Any] = {}
    if retry is not None:
        kwargs["retry"] = retry
    return FleetConfig(
        chips=specs, epochs=epochs, epoch_s=epoch_s, budget=budget, **kwargs
    )


def build_fault_schedule(specs: Iterable[str]) -> FleetFaultSchedule:
    """Parse CLI-style fault specs into a schedule."""
    return FleetFaultSchedule(parse_fleet_fault(spec) for spec in specs)


@dataclass
class FleetCampaignResult:
    """A finished fleet campaign: the supervisor's deterministic report."""

    report: Dict[str, Any]

    @property
    def epochs_completed(self) -> int:
        return int(self.report["epochs_completed"])

    @property
    def audit_violations(self) -> List[str]:
        return list(self.report["audit"]["violations"])

    @property
    def total_restarts(self) -> int:
        return int(self.report["total_restarts"])

    def all_chips_complete(self) -> bool:
        epochs = int(self.report["config"]["epochs"])
        return all(
            chip["completed_epochs"] == epochs
            for chip in self.report["chips"].values()
        )

    def as_table(self) -> str:
        rows = [
            f"{'chip':8s} {'region':10s} {'workload':8s} {'epochs':>6s} "
            f"{'restarts':>8s} {'rung':>4s} {'grant W':>8s} {'power W':>8s} "
            f"{'miss':>6s}"
        ]
        config = self.report["config"]
        specs = {spec["chip_id"]: spec for spec in config["chips"]}
        last_row = self.report["rows"][-1] if self.report["rows"] else None
        for chip_id in sorted(self.report["chips"]):
            chip = self.report["chips"][chip_id]
            spec = specs[chip_id]
            last = chip.get("last_result") or {}
            rung = (
                last_row["rungs"].get(chip_id) if last_row is not None else None
            )
            grant = (
                last_row["grants"].get(chip_id, 0.0)
                if last_row is not None
                else 0.0
            )
            rows.append(
                f"{chip_id:8s} {spec['region']:10s} {spec['workload']:8s} "
                f"{chip['completed_epochs']:6d} {chip['restarts']:8d} "
                f"{'-' if rung is None else rung:>4} {grant:8.2f} "
                f"{last.get('avg_power_w', 0.0):8.2f} "
                f"{last.get('miss_fraction', 0.0):6.2f}"
            )
        lines = [
            "fleet campaign "
            f"({len(specs)} chips, {config['epochs']} epochs of "
            f"{config['epoch_s']}s, grid budget "
            f"{config['budget']['grid_budget_w']:.1f} W)",
            "",
            "\n".join(rows),
            "",
            f"epochs completed : {self.epochs_completed}/{config['epochs']}",
            f"faults injected  : {self.report['faults_injected'] or 'none'}",
            f"failures detected: {len(self.report['failures'])}",
            f"worker restarts  : {self.total_restarts}",
            "budget audit     : "
            + (
                "clean"
                if not self.audit_violations
                else f"{len(self.audit_violations)} violation(s)"
            ),
        ]
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.report, sort_keys=True, indent=2)


def run_fleet_campaign(
    chips: int = 8,
    epochs: int = 6,
    epoch_s: float = 0.5,
    grid_budget_w: Optional[float] = None,
    seed: int = 1,
    governor: str = "PPM",
    fleet_dir: str = DEFAULT_FLEET_DIR,
    faults: Iterable[str] = (),
    retry: Optional[RetryPolicy] = None,
    strict_audit: bool = False,
    until_epoch: Optional[int] = None,
) -> FleetCampaignResult:
    """Run one fleet campaign from scratch; see :func:`build_fleet_config`."""
    config = build_fleet_config(
        chips=chips,
        epochs=epochs,
        epoch_s=epoch_s,
        grid_budget_w=grid_budget_w,
        seed=seed,
        governor=governor,
        retry=retry,
    )
    supervisor = FleetSupervisor(
        config,
        fleet_dir,
        schedule=build_fault_schedule(faults),
        strict_audit=strict_audit,
    )
    return FleetCampaignResult(supervisor.run(until_epoch=until_epoch))


def resume_fleet_campaign(
    fleet_dir: str = DEFAULT_FLEET_DIR, strict_audit: bool = False
) -> FleetCampaignResult:
    """Continue an interrupted fleet campaign from its manifest."""
    supervisor = FleetSupervisor.resume(fleet_dir, strict_audit=strict_audit)
    return FleetCampaignResult(supervisor.run())


def write_fleet_report(
    result: FleetCampaignResult, out_dir: str = "results"
) -> str:
    """Write ``fleet.txt`` and ``fleet.json`` under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    text_path = os.path.join(out_dir, "fleet.txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(result.as_table() + "\n")
    with open(os.path.join(out_dir, "fleet.json"), "w", encoding="utf-8") as handle:
        handle.write(result.to_json() + "\n")
    return text_path
