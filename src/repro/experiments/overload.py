"""Overload experiments: flash crowds against the admission ladder.

The headline question: when an open-ended arrival stream offers *more*
demand than the chip can sell power to, does market-based admission
control degrade service gracefully -- and measurably better than just
letting everything in?

Each governor runs the same flash-crowd scenario twice from identical
seeds: once with the admission ladder
(:class:`~repro.core.admission.AdmissionController`) and once with the
no-admission-control baseline (every arrival admitted at full QoS).  The
report compares the *tail* of per-task QoS over admitted stream tasks --
p50/p95/p99 of the below-minimum-heart-rate fraction -- because under
overload the mean hides exactly the tasks the crowd starves (see
PAPERS.md on energy-vs-tail-QoS frontiers).

``run_overload_soak`` additionally overlays the flash crowd on the
chaos-soak compound-fault schedule with live thermals: arrival churn,
thermal stress and injected faults at once, with the market auditor
checking every round.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint import atomic_write_text
from ..core.admission import AdmissionConfig, AdmissionController, OverloadManager
from ..faults import FaultInjector
from ..hw import tc2_chip
from ..sim import SimConfig, Simulation
from ..sim.engine import derive_stream_seed
from ..tasks import ArrivalConfig, ArrivalStream, build_workload, sustainable_rate_hz
from ..tasks.traces import DemandTrace
from .campaigns import (
    DEFAULT_CAMPAIGN_GOVERNORS,
    build_soak_schedule,
    campaign_thermal_config,
    merged_windows,
)
from .harness import make_governor
from .parallel import PointSpec, execute_points

#: The canonical overload severity: burst demand at this multiple of the
#: sustainable arrival rate (see :func:`repro.tasks.sustainable_rate_hz`).
OVERLOAD_MULTIPLIER = 3.0

#: Base (pre/post burst) arrival rate as a fraction of sustainable.
BASE_RATE_FRACTION = 0.5

#: Default TDP for overload runs: loose enough (the determinism-suite
#: cap) that the arrival overload -- not the power budget -- is the
#: binding constraint, which is the failure mode this experiment
#: isolates.  The admission controller prices supply at thermally-capped
#: max frequency, a good model of what the market can sell only when the
#: TDP is not the dominant limit; pass ``power_cap_w`` explicitly to
#: study the doubly-constrained regime.
OVERLOAD_TDP_W = 10.0


def build_overload_arrivals(
    chip,
    duration_s: float,
    warmup_s: float,
    multiplier: float = OVERLOAD_MULTIPLIER,
) -> ArrivalConfig:
    """Flash-crowd arrival config calibrated to the chip's capacity.

    The base rate keeps the system comfortably under-subscribed
    (:data:`BASE_RATE_FRACTION` of sustainable); the burst jumps to
    ``multiplier`` times sustainable, starts shortly after the warm-up
    and covers roughly a third of the run, leaving a recovery tail in
    which the ladder must walk back down.
    """
    if multiplier <= 1.0:
        raise ValueError("an overload multiplier must exceed 1.0")
    probe = ArrivalConfig()
    sustainable = sustainable_rate_hz(chip, probe)
    burst_start = warmup_s + 2.0
    burst_duration = max(4.0, (duration_s - burst_start) / 3.0)
    if burst_start + burst_duration >= duration_s:
        raise ValueError(
            "run too short for a flash crowd: need warmup + 2 s lead-in, "
            "a burst, and a recovery tail"
        )
    return ArrivalConfig(
        process="flash-crowd",
        rate_hz=BASE_RATE_FRACTION * sustainable,
        burst_rate_hz=multiplier * sustainable,
        burst_start_s=burst_start,
        burst_duration_s=burst_duration,
        # Short-lived requests: churn fast enough that admission and
        # departure both happen many times inside one run.
        lifetime_s=(1.5, 4.0),
    )


def _arrival_config_from_identity(data: Dict[str, object]) -> ArrivalConfig:
    """Rebuild an :class:`ArrivalConfig` from its ``identity()`` dict."""
    return ArrivalConfig(
        **{
            **data,
            "mmpp_rates": tuple(data["mmpp_rates"]),
            "lifetime_s": tuple(data["lifetime_s"]),
            "priorities": tuple(data["priorities"]),
            "catalogue": tuple((bench, code) for bench, code in data["catalogue"]),
        }
    )


def _build_manager(
    identity: Dict[str, object], with_admission: bool
) -> OverloadManager:
    stream = ArrivalStream(
        _arrival_config_from_identity(identity["arrival"]),
        seed=derive_stream_seed(identity["seed"], "arrivals"),
        trace=(
            None
            if identity["trace"] is None
            else DemandTrace.from_json(identity["trace"])
        ),
    )
    controller = (
        AdmissionController(AdmissionConfig(**identity["admission"]))
        if with_admission
        else None
    )
    return OverloadManager(stream, controller)


@dataclass
class OverloadRun:
    """One governor under a flash crowd: admission ladder vs baseline."""

    governor: str
    offered: int
    admitted: int
    admitted_degraded: int
    queued: int
    queue_timeouts: int
    shed_tasks: int
    rejected: int
    peak_queue_depth: int
    final_state: str
    ladder_transitions: int
    #: p50/p95/p99 of per-admitted-task below-minimum-HR fraction.
    tail_qos: Dict[str, float]
    #: p50/p95/p99 of seconds from arrival to admission.
    admission_latency_s: Dict[str, float]
    average_power_w: float
    audit_violations: int
    #: Same stream with no admission control (everything admitted).
    baseline_admitted: int
    baseline_tail_qos: Dict[str, float]
    baseline_audit_violations: int

    @property
    def p99_improvement(self) -> float:
        """How much p99 QoS violation the ladder removes vs the baseline."""
        return self.baseline_tail_qos["p99"] - self.tail_qos["p99"]


@dataclass
class OverloadResult:
    """One overload scenario swept across governors."""

    workload: str
    duration_s: float
    seed: int
    tdp_w: float
    multiplier: float
    arrival_rate_hz: float
    burst_rate_hz: float
    burst_window: Tuple[float, float]
    runs: List[OverloadRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Overload: flash crowd at {self.multiplier:.1f}x sustainable  "
            f"(workload {self.workload}, {self.duration_s:.0f} s, seed "
            f"{self.seed}, TDP {self.tdp_w:.1f} W, "
            f"{self.arrival_rate_hz:.1f} -> {self.burst_rate_hz:.1f} arr/s "
            f"over t=[{self.burst_window[0]:.0f}, {self.burst_window[1]:.0f}])"
        )
        columns = (
            f"{'governor':<10} {'offered':>8} {'admit':>6} {'degr':>5} "
            f"{'queue':>6} {'shed':>5} {'rej':>5} {'peakQ':>6} "
            f"{'p99 miss':>9} {'base p99':>9} {'lat p95':>8} {'audits':>7}"
        )
        rows = []
        for run in self.runs:
            rows.append(
                f"{run.governor:<10} {run.offered:>8d} {run.admitted:>6d} "
                f"{run.admitted_degraded:>5d} {run.queued:>6d} "
                f"{run.shed_tasks:>5d} {run.rejected:>5d} "
                f"{run.peak_queue_depth:>6d} {run.tail_qos['p99']:>9.3f} "
                f"{run.baseline_tail_qos['p99']:>9.3f} "
                f"{run.admission_latency_s['p95']:>8.3f} "
                f"{run.audit_violations:>7d}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "tdp_w": self.tdp_w,
                "multiplier": self.multiplier,
                "arrival_rate_hz": self.arrival_rate_hz,
                "burst_rate_hz": self.burst_rate_hz,
                "burst_window": list(self.burst_window),
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def _overload_identity(
    workload: str,
    duration_s: float,
    warmup_s: float,
    seed: int,
    cap: float,
    governors: Sequence[str],
    multiplier: float,
    arrival: ArrivalConfig,
    admission: AdmissionConfig,
    trace_json: Optional[str],
) -> Dict[str, object]:
    return {
        "workload": workload,
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "seed": seed,
        "tdp_w": cap,
        "governors": list(governors),
        "multiplier": multiplier,
        "arrival": arrival.identity(),
        "admission": asdict(admission),
        "trace": trace_json,
    }


def _run_overload_sim(
    identity: Dict[str, object], name: str, with_admission: bool
) -> Tuple[Simulation, OverloadManager]:
    chip = tc2_chip()
    sim = Simulation(
        chip,
        build_workload(identity["workload"]),
        make_governor(name, power_cap_w=identity["tdp_w"]),
        config=SimConfig(
            metrics_warmup_s=identity["warmup_s"],
            seed=identity["seed"],
            audit=True,
        ),
    )
    manager = _build_manager(identity, with_admission).attach(sim)
    sim.run(identity["duration_s"])
    return sim, manager


def _tail(metrics, names: Sequence[str]) -> Dict[str, float]:
    return metrics.violation_fraction_percentiles(names)


def _committed_population(sim, manager: OverloadManager) -> List[str]:
    """Every task the system is committed to serve: the resident base
    workload plus admitted-and-not-shed stream tasks.

    The resident tasks belong in the violation population -- they are
    standing admissions, and protecting them is half of what the ladder
    buys (under the no-control baseline the crowd starves them too).
    Shed tasks are excluded: shedding *withdraws* the commitment so the
    rest of this population can be served.
    """
    controller = manager.controller
    shed = set(controller.shed_names) if controller is not None else set()
    return [task.name for task in sim.tasks if task.name not in shed]


def _latency_tail(latencies: Sequence[float]) -> Dict[str, float]:
    from ..sim.metrics import MetricsCollector

    return {
        f"p{pct:g}": MetricsCollector.percentile(list(latencies), pct)
        for pct in (50.0, 95.0, 99.0)
    }


def _overload_point(identity: Dict[str, object], name: str) -> OverloadRun:
    """One governor's paired (admission, baseline) flash-crowd runs.

    Top-level and fed only picklable arguments so it runs identically
    in-process and inside a pool worker.  Both runs share the scenario
    identity -- and therefore the exact same arrival stream -- so the
    comparison isolates the admission policy.
    """
    sim, manager = _run_overload_sim(identity, name, with_admission=True)
    base_sim, base_manager = _run_overload_sim(identity, name, with_admission=False)
    controller = manager.controller
    stats = controller.stats()
    return OverloadRun(
        governor=name,
        offered=stats["offered"],
        admitted=stats["admitted"],
        admitted_degraded=stats["admitted_degraded"],
        queued=stats["queued"],
        queue_timeouts=stats["queue_timeouts"],
        shed_tasks=stats["shed_tasks"],
        rejected=stats["rejected"],
        peak_queue_depth=stats["peak_queue_depth"],
        final_state=controller.state.value,
        ladder_transitions=len(controller.transitions),
        tail_qos=_tail(sim.metrics, _committed_population(sim, manager)),
        admission_latency_s=_latency_tail(controller.admission_latencies),
        average_power_w=sim.metrics.average_power_w(),
        audit_violations=sim.metrics.audit_violation_count(),
        baseline_admitted=base_manager.baseline_admitted,
        baseline_tail_qos=_tail(
            base_sim.metrics, _committed_population(base_sim, base_manager)
        ),
        baseline_audit_violations=base_sim.metrics.audit_violation_count(),
    )


def run_overload(
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "l1",
    duration_s: float = 30.0,
    warmup_s: float = 3.0,
    seed: int = 1,
    multiplier: float = OVERLOAD_MULTIPLIER,
    power_cap_w: Optional[float] = None,
    admission: Optional[AdmissionConfig] = None,
    trace: Optional[DemandTrace] = None,
    jobs: Optional[int] = None,
) -> OverloadResult:
    """Drive every governor through the same flash crowd, twice each.

    A light base workload (default ``l1``) plays the chip's resident
    tasks; on top, a flash-crowd arrival stream jumps to ``multiplier``
    times the sustainable rate.  Each governor is measured with the
    admission ladder and against the admit-everything baseline from the
    identical stream; ``trace`` optionally rate-modulates both.

    ``jobs`` (default ``$REPRO_JOBS`` or 1) spreads governor points
    across worker processes; streams are rebuilt per point from the
    scenario identity, so results are bitwise independent of ``jobs``.
    """
    cap = power_cap_w if power_cap_w is not None else OVERLOAD_TDP_W
    chip = tc2_chip()
    arrival = build_overload_arrivals(chip, duration_s, warmup_s, multiplier)
    identity = _overload_identity(
        workload,
        duration_s,
        warmup_s,
        seed,
        cap,
        governors,
        multiplier,
        arrival,
        admission or AdmissionConfig(),
        None if trace is None else trace.to_json(),
    )
    result = OverloadResult(
        workload=workload,
        duration_s=duration_s,
        seed=seed,
        tdp_w=cap,
        multiplier=multiplier,
        arrival_rate_hz=arrival.rate_hz,
        burst_rate_hz=arrival.burst_rate_hz,
        burst_window=(
            arrival.burst_start_s,
            arrival.burst_start_s + arrival.burst_duration_s,
        ),
    )
    specs = [
        PointSpec(
            fn=_overload_point,
            label=f"overload/{name}",
            args=(identity, name),
        )
        for name in governors
    ]
    result.runs.extend(execute_points(specs, jobs=jobs))
    return result


def write_overload_report(result: OverloadResult, out_dir: str = "results") -> str:
    """Write the overload table and JSON under ``out_dir``; returns the path."""
    stem = os.path.join(out_dir, f"overload_{result.workload}")
    atomic_write_text(stem + ".txt", result.as_table() + "\n")
    atomic_write_text(stem + ".json", result.to_json() + "\n")
    return stem + ".txt"


# ----------------------------------------------------------------------
# Overload soak: flash crowds on top of compound faults and thermals
# ----------------------------------------------------------------------
@dataclass
class OverloadSoakRun:
    """One governor through faults + thermal stress + flash crowds."""

    governor: str
    offered: int
    admitted: int
    shed_tasks: int
    rejected: int
    queue_timeouts: int
    peak_queue_depth: int
    final_state: str
    tail_qos: Dict[str, float]
    time_over_tcrit_s: float
    peak_temperature_c: Optional[float]
    unrecovered_trips: int
    audit_violations: int
    average_power_w: float
    fault_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class OverloadSoakResult:
    """Every governor through the same overload-plus-faults soak."""

    workload: str
    duration_s: float
    seed: int
    tdp_w: float
    multiplier: float
    windows: List[Tuple[float, float]]
    runs: List[OverloadSoakRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Overload soak  (workload {self.workload}, "
            f"{self.duration_s:.0f} s, seed {self.seed}, TDP "
            f"{self.tdp_w:.1f} W, {self.multiplier:.1f}x crowd, "
            f"{len(self.windows)} merged fault windows)"
        )
        columns = (
            f"{'governor':<10} {'offered':>8} {'admit':>6} {'shed':>5} "
            f"{'rej':>5} {'t/o':>5} {'peakQ':>6} {'p99 miss':>9} "
            f"{'t>Tcrit':>8} {'unrec':>6} {'audits':>7} {'avg W':>7}"
        )
        rows = []
        for run in self.runs:
            rows.append(
                f"{run.governor:<10} {run.offered:>8d} {run.admitted:>6d} "
                f"{run.shed_tasks:>5d} {run.rejected:>5d} "
                f"{run.queue_timeouts:>5d} {run.peak_queue_depth:>6d} "
                f"{run.tail_qos['p99']:>9.3f} "
                f"{run.time_over_tcrit_s:>8.2f} {run.unrecovered_trips:>6d} "
                f"{run.audit_violations:>7d} {run.average_power_w:>7.2f}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "tdp_w": self.tdp_w,
                "multiplier": self.multiplier,
                "windows": self.windows,
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def _overload_soak_point(identity: Dict[str, object], name: str) -> OverloadSoakRun:
    """One governor's overload soak; picklable for pool workers.

    Live thermal tracking with the full protection ladder, the chaos
    soak's compound-fault schedule, the market auditor, *and* a
    flash-crowd arrival stream behind the admission controller -- the
    admission ladder must hold while the thermal ladder is also active
    and sensors are faulting underneath both.
    """
    chip = tc2_chip()
    schedule = build_soak_schedule(
        identity["duration_s"], identity["warmup_s"], chip
    )
    sim = Simulation(
        chip,
        build_workload(identity["workload"]),
        make_governor(name, power_cap_w=identity["tdp_w"]),
        config=SimConfig(
            metrics_warmup_s=identity["warmup_s"],
            seed=identity["seed"],
            audit=True,
            thermal=campaign_thermal_config(chip),
        ),
    )
    injector = FaultInjector(sim, schedule).attach()
    manager = _build_manager(identity, with_admission=True).attach(sim)
    metrics = sim.run(identity["duration_s"])
    controller = manager.controller
    stats = controller.stats()
    temp_peaks = [
        max(s.cluster_temperature_c.values())
        for s in metrics.samples
        if s.cluster_temperature_c
    ]
    supervisor = sim.thermal_supervisor
    return OverloadSoakRun(
        governor=name,
        offered=stats["offered"],
        admitted=stats["admitted"],
        shed_tasks=stats["shed_tasks"],
        rejected=stats["rejected"],
        queue_timeouts=stats["queue_timeouts"],
        peak_queue_depth=stats["peak_queue_depth"],
        final_state=controller.state.value,
        tail_qos=_tail(metrics, _committed_population(sim, manager)),
        time_over_tcrit_s=sim.time_over_tcrit_s,
        peak_temperature_c=max(temp_peaks) if temp_peaks else None,
        unrecovered_trips=(
            supervisor.unrecovered_trips if supervisor is not None else 0
        ),
        audit_violations=metrics.audit_violation_count(),
        average_power_w=metrics.average_power_w(),
        fault_stats=injector.stats(),
    )


def run_overload_soak(
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "m2",
    duration_s: float = 60.0,
    warmup_s: float = 5.0,
    seed: int = 1,
    multiplier: float = OVERLOAD_MULTIPLIER,
    power_cap_w: Optional[float] = None,
    trace: Optional[DemandTrace] = None,
    jobs: Optional[int] = None,
) -> OverloadSoakResult:
    """Overlay flash crowds on the chaos soak's faults and thermals."""
    cap = power_cap_w if power_cap_w is not None else OVERLOAD_TDP_W
    chip = tc2_chip()
    arrival = build_overload_arrivals(chip, duration_s, warmup_s, multiplier)
    identity = _overload_identity(
        workload,
        duration_s,
        warmup_s,
        seed,
        cap,
        governors,
        multiplier,
        arrival,
        AdmissionConfig(),
        None if trace is None else trace.to_json(),
    )
    schedule = build_soak_schedule(duration_s, warmup_s, chip)
    result = OverloadSoakResult(
        workload=workload,
        duration_s=duration_s,
        seed=seed,
        tdp_w=cap,
        multiplier=multiplier,
        windows=merged_windows(schedule.windows()),
    )
    specs = [
        PointSpec(
            fn=_overload_soak_point,
            label=f"overload-soak/{name}",
            args=(identity, name),
        )
        for name in governors
    ]
    result.runs.extend(execute_points(specs, jobs=jobs))
    return result


def write_overload_soak_report(
    result: OverloadSoakResult, out_dir: str = "results"
) -> str:
    """Write the overload-soak table and JSON; returns the text path."""
    stem = os.path.join(out_dir, f"overload_soak_{result.workload}")
    atomic_write_text(stem + ".txt", result.as_table() + "\n")
    atomic_write_text(stem + ".json", result.to_json() + "\n")
    return stem + ".txt"
