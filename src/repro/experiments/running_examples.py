"""The paper's running examples: Tables 1, 2, 3 and 4.

These drive the *stand-alone* market (no simulator) through exactly the
scenarios of the paper's worked examples:

* Table 1 -- two tasks bidding on a 300 PU core until their 200/100 PU
  demands are met.
* Table 2 -- a demand increase to 300 PUs causes intolerable inflation
  (delta = 0.2) and a supply step to 400 PUs.
* Table 3 -- a further demand increase pushes the chip through the
  normal -> threshold -> emergency states; the allowance contracts and the
  system stabilises in the threshold state with the high-priority task
  served.
* Table 4 -- the heart-rate -> demand conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import ChipPowerState, Market, MarketConfig, MarketObservations
from ..tasks import demand_from_heart_rate
from .reporting import format_table


@dataclass
class MarketRoundRow:
    """One printed row of a running-example table."""

    round_index: int
    bids: Dict[str, float]
    price: float
    base_price: Optional[float]
    supplies: Dict[str, float]
    core_supply: float
    allowance: float
    savings: Dict[str, float]
    state: str


class SingleCoreScenario:
    """A scriptable one-cluster/one-core market, as in Tables 1-3."""

    def __init__(
        self,
        supply_ladder: List[float],
        task_priorities: Dict[str, int],
        config: Optional[MarketConfig] = None,
        power_of_supply: Optional[Dict[float, float]] = None,
    ):
        self.config = config or MarketConfig(
            tolerance=0.2, initial_bid=1.0, initial_allowance=40.0
        )
        self.market = Market(self.config)
        self.market.add_cluster("v", ["c"], supply_ladder)
        for task_id, priority in task_priorities.items():
            self.market.add_task(task_id, priority, "c")
        self.level = 0
        self.power_of_supply = power_of_supply or {}
        self.rows: List[MarketRoundRow] = []

    @property
    def supply(self) -> float:
        return self.market.clusters["v"].supply_ladder[self.level]

    def current_power(self) -> float:
        return self.power_of_supply.get(self.supply, 0.5)

    def run_round(self, demands: Dict[str, float]) -> MarketRoundRow:
        """One bid round; level requests apply before the next round."""
        supply_used = self.supply
        obs = MarketObservations(
            demands=demands,
            cluster_level={"v": self.level},
            cluster_in_transition={"v": False},
            chip_power_w=self.current_power(),
            cluster_power_w={"v": self.current_power()},
        )
        result = self.market.run_round(obs)
        # A requested level change is applied by the (instant) regulator
        # before the next round, as in the paper's tables.
        for _, new_level in result.level_requests.items():
            self.level = new_level
        core = self.market.cores["c"]
        row = MarketRoundRow(
            round_index=len(self.rows) + 1,
            bids={t: a.bid for t, a in self.market.tasks.items()},
            price=result.prices["c"],
            base_price=core.base_price,
            supplies={t: a.supply for t, a in self.market.tasks.items()},
            core_supply=supply_used,
            allowance=result.allowance,
            savings={t: a.wallet.savings for t, a in self.market.tasks.items()},
            state=result.chip_state.value,
        )
        self.rows.append(row)
        return row

    def as_table(self, title: str) -> str:
        task_ids = sorted(self.market.tasks)
        headers = (
            ["round"]
            + [f"b_{t}" for t in task_ids]
            + ["P_c", "PBase_c"]
            + [f"s_{t}" for t in task_ids]
            + ["S_c", "A", "state"]
        )
        rows = []
        for row in self.rows:
            rows.append(
                [row.round_index]
                + [f"{row.bids[t]:.3f}" for t in task_ids]
                + [
                    f"{row.price:.5f}",
                    f"{row.base_price:.5f}" if row.base_price else "-",
                ]
                + [f"{row.supplies[t]:.0f}" for t in task_ids]
                + [f"{row.core_supply:.0f}", f"{row.allowance:.2f}", row.state]
            )
        return format_table(headers, rows, title=title)


def table1() -> Tuple[SingleCoreScenario, str]:
    """Table 1: task/core bidding dynamics on a 300 PU core."""
    scenario = SingleCoreScenario(
        supply_ladder=[300.0, 400.0, 500.0, 600.0],
        task_priorities={"ta": 1, "tb": 1},
    )
    for _ in range(2):
        scenario.run_round({"ta": 200.0, "tb": 100.0})
    return scenario, scenario.as_table(
        "Table 1: task and core level dynamics (d_ta=200, d_tb=100, S_c=300)"
    )


def table2() -> Tuple[SingleCoreScenario, str]:
    """Table 2: inflation-driven supply increase (continues Table 1)."""
    scenario = SingleCoreScenario(
        supply_ladder=[300.0, 400.0, 500.0, 600.0],
        task_priorities={"ta": 1, "tb": 1},
    )
    for _ in range(2):
        scenario.run_round({"ta": 200.0, "tb": 100.0})
    for _ in range(2):
        scenario.run_round({"ta": 300.0, "tb": 100.0})
    return scenario, scenario.as_table(
        "Table 2: cluster level dynamics (d_ta rises to 300; delta = 0.2)"
    )


#: The Table 3 example's power model: the chip reaches the threshold state
#: at 500 PUs (2 W) and the emergency state at 600 PUs (3 W).
TABLE3_POWER = {300.0: 0.6, 400.0: 0.8, 500.0: 2.0, 600.0: 3.0}


def table3(rounds: int = 20) -> Tuple[SingleCoreScenario, str]:
    """Table 3: chip-level dynamics with Wtdp = 2.25 W, Wth = 1.75 W."""
    scenario = SingleCoreScenario(
        supply_ladder=[300.0, 400.0, 500.0, 600.0],
        task_priorities={"ta": 2, "tb": 1},
        config=MarketConfig(
            tolerance=0.2,
            initial_bid=1.0,
            initial_allowance=4.5,
            wtdp=2.25,
            wth=1.75,
        ),
        power_of_supply=TABLE3_POWER,
    )
    # Rounds 1-4: reach the Table 2 end state (d_ta=300 satisfied at 400 PUs).
    scenario.run_round({"ta": 200.0, "tb": 100.0})
    scenario.run_round({"ta": 200.0, "tb": 100.0})
    scenario.run_round({"ta": 300.0, "tb": 100.0})
    scenario.run_round({"ta": 300.0, "tb": 100.0})
    # Round 5 onward: d_tb rises to 300 -> threshold -> emergency -> stable.
    for _ in range(rounds - 4):
        scenario.run_round({"ta": 300.0, "tb": 300.0})
    return scenario, scenario.as_table(
        "Table 3: chip level dynamics (Wtdp=2.25W, Wth=1.75W, priorities 2:1)"
    )


def table4() -> str:
    """Table 4: heart-rate -> demand conversion (range [24, 30] hb/s)."""
    target_hr = 27.0
    rows = []
    for phase, hr, freq, util in [(1, 15.0, 500.0, 1.0), (2, 10.0, 800.0, 0.5), (3, 40.0, 1000.0, 1.0)]:
        supply = freq * util
        demand = demand_from_heart_rate(target_hr, supply, hr)
        rows.append([phase, f"{hr:.0f}", f"{freq:.0f}", f"{util * 100:.0f}%", f"{supply:.0f}", f"{demand:.0f}"])
    return format_table(
        ["phase", "hr [hb/s]", "freq [MHz]", "util", "s [PU]", "d [PU]"],
        rows,
        title="Table 4: heart rate to demand conversion (range 24-30 hb/s)",
    )
