"""The comparative study: Figures 4, 5 and 6.

* Figure 4 -- percentage of time the reference heart-rate range of any
  task is not met (observed rate below the prescribed minimum), with no
  TDP constraint, for PPM vs HPM vs HL over the nine workload sets.
* Figure 5 -- average chip power for the same runs.
* Figure 6 -- the Figure 4 metric under a 4 W TDP cap.

Expected shape (paper section 5.3): HL wins QoS on light sets but at much
higher power (the paper measures HL at 5.99 W average against 3.43 W for
HPM and 2.96 W for PPM); PPM wins QoS on medium and heavy sets; under the
4 W cap PPM misses least (34% / 44% better than HPM / HL in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..tasks import WORKLOAD_ORDER
from .harness import (
    DEFAULT_DURATION_S,
    DEFAULT_WARMUP_S,
    GOVERNOR_NAMES,
    RunResult,
    capped_tdp_w,
    run_workload,
)
from .parallel import PointSpec, execute_points
from .reporting import format_percent_table, format_table


@dataclass
class ComparativeResult:
    """All runs of one comparative sweep, indexed [governor][workload]."""

    runs: Dict[str, Dict[str, RunResult]]
    power_cap_w: Optional[float]

    def workloads(self) -> Tuple[str, ...]:
        """Workload columns actually present, in canonical order."""
        present = {wl for by_wl in self.runs.values() for wl in by_wl}
        ordered = [wl for wl in WORKLOAD_ORDER if wl in present]
        ordered += sorted(present - set(ordered))
        return tuple(ordered)

    def miss_table(self) -> Dict[str, Dict[str, float]]:
        return {
            gov: {wl: r.miss_fraction for wl, r in by_wl.items()}
            for gov, by_wl in self.runs.items()
        }

    def power_table(self) -> Dict[str, Dict[str, float]]:
        return {
            gov: {wl: r.average_power_w for wl, r in by_wl.items()}
            for gov, by_wl in self.runs.items()
        }

    def mean_miss(self, governor: str) -> float:
        rows = self.runs[governor]
        return sum(r.miss_fraction for r in rows.values()) / len(rows)

    def mean_power(self, governor: str) -> float:
        rows = self.runs[governor]
        return sum(r.average_power_w for r in rows.values()) / len(rows)

    def improvement_over(self, baseline: str, ours: str = "PPM") -> float:
        """Relative reduction in mean miss fraction of ``ours`` vs baseline."""
        base = self.mean_miss(baseline)
        if base <= 0.0:
            return 0.0
        return (base - self.mean_miss(ours)) / base

    def total_audit_violations(self) -> int:
        """Market-invariant violations across all runs (strict audit only)."""
        return sum(
            r.audit_violations for by_wl in self.runs.values()
            for r in by_wl.values()
        )


def run_comparative(
    power_cap_w: Optional[float] = None,
    governors: Sequence[str] = GOVERNOR_NAMES,
    workloads: Sequence[str] = WORKLOAD_ORDER,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    jobs: Optional[int] = None,
    strict_audit: bool = False,
) -> ComparativeResult:
    """Run the full governors x workloads sweep.

    ``jobs`` (default ``$REPRO_JOBS`` or 1) fans the independent
    (governor, workload) points out over worker processes; results are
    merged back in the serial iteration order, so the resulting tables
    are identical whatever the job count.

    ``strict_audit`` runs the market auditor every round of every point
    (slower; see ``--strict-audit`` on the CLI) and surfaces the total
    violation count via :meth:`ComparativeResult.total_audit_violations`.
    """
    specs = [
        PointSpec(
            fn=run_workload,
            label=f"{governor}/{workload}",
            args=(workload, governor),
            kwargs={
                "duration_s": duration_s,
                "warmup_s": warmup_s,
                "power_cap_w": power_cap_w,
                "strict_audit": strict_audit,
            },
        )
        for governor in governors
        for workload in workloads
    ]
    results = execute_points(specs, jobs=jobs)
    runs: Dict[str, Dict[str, RunResult]] = {}
    cursor = iter(results)
    for governor in governors:
        runs[governor] = {}
        for workload in workloads:
            runs[governor][workload] = next(cursor)
    return ComparativeResult(runs=runs, power_cap_w=power_cap_w)


def figure4(
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    result: Optional[ComparativeResult] = None,
    jobs: Optional[int] = None,
    strict_audit: bool = False,
) -> Tuple[ComparativeResult, str]:
    """Figure 4: QoS miss percentage, no TDP constraint."""
    result = result or run_comparative(
        duration_s=duration_s, warmup_s=warmup_s, jobs=jobs,
        strict_audit=strict_audit,
    )
    text = format_percent_table(
        "Figure 4: % time any task misses its reference heart-rate range (no TDP)",
        list(result.workloads()),
        result.miss_table(),
    )
    return result, text


def figure5(
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    result: Optional[ComparativeResult] = None,
    jobs: Optional[int] = None,
    strict_audit: bool = False,
) -> Tuple[ComparativeResult, str]:
    """Figure 5: average power consumption, no TDP constraint.

    Pass the :class:`ComparativeResult` from :func:`figure4` to reuse the
    same runs, as the paper does.
    """
    result = result or run_comparative(
        duration_s=duration_s, warmup_s=warmup_s, jobs=jobs,
        strict_audit=strict_audit,
    )
    columns = list(result.workloads())
    headers = ["governor"] + columns + ["mean [W]"]
    rows = []
    for gov, by_wl in result.power_table().items():
        vals = [by_wl[wl] for wl in columns]
        rows.append(
            [gov]
            + [f"{v:.2f}" for v in vals]
            + [f"{sum(vals) / len(vals):.2f}"]
        )
    text = format_table(
        headers, rows, title="Figure 5: average power consumption [W] (no TDP)"
    )
    return result, text


def figure6(
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    power_cap_w: Optional[float] = None,
    jobs: Optional[int] = None,
    strict_audit: bool = False,
) -> Tuple[ComparativeResult, str]:
    """Figure 6: QoS miss percentage under the 4 W TDP constraint."""
    cap = power_cap_w if power_cap_w is not None else capped_tdp_w()
    result = run_comparative(
        power_cap_w=cap, duration_s=duration_s, warmup_s=warmup_s, jobs=jobs,
        strict_audit=strict_audit,
    )
    text = format_percent_table(
        f"Figure 6: % time any task misses its reference range (TDP {cap:.0f} W)",
        list(result.workloads()),
        result.miss_table(),
    )
    improvements = "\nPPM mean-miss improvement: {:.0f}% vs HPM, {:.0f}% vs HL".format(
        100 * result.improvement_over("HPM"), 100 * result.improvement_over("HL")
    )
    return result, text + improvements
