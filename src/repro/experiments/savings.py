"""The savings experiment: Figure 8.

The paper runs swaptions and x264 at equal priority on one core with LBT
disabled.  x264 starts in a dormant phase (low demand): it exceeds its
performance goal and banks most of its allowance as savings, while
swaptions "just about meets its demand" and saves little.  When x264's
active phase hits, its demand cannot be covered by its allowance alone,
so it spends the hoard to outbid swaptions and sustain its heart rate --
until the savings run out and its performance collapses below the range.

The reproduced shape: above-range dormant phase -> sustained in-range
performance early in the active phase financed by savings -> collapse
when the wallet empties.  How long the sustain lasts is set by the
savings cap (a designer knob in the paper); the experiment exposes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import MarketConfig, PPMConfig, PPMGovernor
from ..core.telemetry import MarketRecorder
from ..sim import Simulation
from ..tasks import (
    BenchmarkProfile,
    ConstantPhase,
    PiecewisePhases,
    Task,
    default_hr_range,
)
from .harness import RunResult, run_system
from .reporting import format_table, sparkline

#: Swaptions is sized so the shared core stays *contended* even while
#: x264 is dormant: swaptions then "just about meets its demand" with its
#: bid pinned at its allowance, banking nothing -- which is exactly what
#: makes x264's hoard decisive later (the paper's asymmetry).
SWAPTIONS_DEMAND_PUS = 720.0
X264_BASE_DEMAND_PUS = 500.0
#: Dormant multiplier: x264 wants only ~60% of its nominal demand.
DORMANT_MULTIPLIER = 0.60
#: Active multiplier: the pair now heavily oversubscribes the core; the
#: surge is financed by the hoard until it drains.
ACTIVE_MULTIPLIER = 1.12


def _swaptions() -> Task:
    nominal_hr = 10.0
    profile = BenchmarkProfile(
        name="swaptions",
        input_label="native",
        nominal_hr=nominal_hr,
        hr_range=default_hr_range(nominal_hr),
        cost_pu_s_per_beat_by_type={
            "A7": SWAPTIONS_DEMAND_PUS / nominal_hr,
            "A15": SWAPTIONS_DEMAND_PUS / nominal_hr / 1.9,
        },
        phases=ConstantPhase(),
    )
    return Task(profile=profile, priority=1, name="swaptions_native")


def _x264(dormant_s: float, active_s: float) -> Task:
    nominal_hr = 30.0
    profile = BenchmarkProfile(
        name="x264",
        input_label="native",
        nominal_hr=nominal_hr,
        hr_range=default_hr_range(nominal_hr),
        cost_pu_s_per_beat_by_type={
            "A7": X264_BASE_DEMAND_PUS / nominal_hr,
            "A15": X264_BASE_DEMAND_PUS / nominal_hr / 1.85,
        },
        phases=PiecewisePhases(
            [
                (dormant_s, DORMANT_MULTIPLIER),
                (active_s, ACTIVE_MULTIPLIER),
                (1e9, 1.0),
            ]
        ),
    )
    return Task(profile=profile, priority=1, name="x264_native")


@dataclass
class SavingsResult:
    """Outcome of the Figure 8 experiment."""

    run: RunResult
    series: Dict[str, Tuple[List[float], List[float]]]
    savings_series: Tuple[List[float], List[float]]  #: (times, x264 savings)
    dormant_s: float
    active_s: float

    def x264_normalized_hr(self, t_from: float, t_to: float) -> float:
        """Mean normalised x264 heart rate over [t_from, t_to)."""
        times, rates = self.series["x264_native"]
        window = [r for t, r in zip(times, rates) if t_from <= t < t_to]
        return sum(window) / len(window) if window else 0.0


def run_savings_experiment(
    dormant_s: float = 100.0,
    active_s: float = 200.0,
    tail_s: float = 100.0,
    savings_cap_fraction: float = 400.0,
) -> SavingsResult:
    """Swaptions + x264 at equal priority on one core, LBT off (paper 5.4).

    ``savings_cap_fraction`` is the designer knob the paper discusses in
    section 3.2.3: it bounds the hoard and therefore how long the active
    phase can be financed.
    """
    swaptions = _swaptions()
    x264 = _x264(dormant_s, active_s)
    governor = PPMGovernor(
        PPMConfig(
            market=MarketConfig(savings_cap_fraction=savings_cap_fraction),
            enable_load_balancing=False,
            enable_migration=False,
        )
    )

    def pin(sim: Simulation) -> None:
        core = sim.chip.cluster("little").cores[0]
        sim.place(swaptions, core)
        sim.place(x264, core)

    recorder = MarketRecorder(governor)

    run = run_system(
        [swaptions, x264],
        governor,
        duration_s=dormant_s + active_s + tail_s,
        warmup_s=10.0,
        placement=pin,
        keep_metrics=True,
        governor_name="PPM",
        workload_name="fig8",
    )
    assert run.metrics is not None
    series = {
        task.name: run.metrics.heart_rate_series(task.name, normalize_by=task.target_hr)
        for task in (swaptions, x264)
    }
    return SavingsResult(
        run=run,
        series=series,
        savings_series=recorder.series("savings", "x264_native"),
        dormant_s=dormant_s,
        active_s=active_s,
    )


def figure8(
    dormant_s: float = 100.0, active_s: float = 200.0, tail_s: float = 100.0
) -> Tuple[SavingsResult, str]:
    """Run the savings experiment and render its phases."""
    result = run_savings_experiment(dormant_s, active_s, tail_s)
    d, a = dormant_s, active_s
    rows = [
        ["dormant (banking)", f"0-{d:.0f}s", f"{result.x264_normalized_hr(10.0, d):.2f}"],
        [
            "active, savings financed",
            f"{d:.0f}-{d + 30:.0f}s",
            f"{result.x264_normalized_hr(d + 2, d + 30):.2f}",
        ],
        [
            "active, savings exhausted",
            f"{d + a - 60:.0f}-{d + a:.0f}s",
            f"{result.x264_normalized_hr(d + a - 60, d + a):.2f}",
        ],
    ]
    text = format_table(
        ["phase", "window", "x264 normalised heart rate"],
        rows,
        title="Figure 8: savings finance a transient demand surge",
    )
    text += "\nx264 hr:      " + sparkline(result.series["x264_native"][1])
    text += "\nswaptions hr: " + sparkline(result.series["swaptions_native"][1])
    text += "\nx264 savings: " + sparkline(result.savings_series[1])
    return result, text
