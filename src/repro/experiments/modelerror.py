"""Model-error campaign: governor robustness to estimation error and drift.

The estimated-power pipeline (``SimConfig.estimation``) replaces the
metered sensor with a counter-fitted model; this campaign measures what
that costs when the model is wrong.  Two error axes are swept jointly,
per governor:

* **error magnitude** -- a :attr:`~repro.faults.FaultKind.COUNTER_BIAS`
  window scales the counters feeding the estimator by ``1 + error``, so
  the fitted model suddenly sees inputs that no longer match the power
  it is asked to explain;
* **drift rate** -- a :attr:`~repro.faults.FaultKind.POWER_MODEL_DRIFT`
  window walks the true silicon draw away from any fitted model at
  ``rate`` per second (aging / thermally-dependent leakage).

Every point runs with the estimation pipeline enabled and the governors
trading on the estimated signal, and reports the robustness headlines:
QoS inside vs. outside the fault windows, seconds of TDP overshoot,
estimation-error percentiles, and the time from fault onset to the
supervisor's analytic-model fallback (``time_to_fallback_s``) together
with its full transition telemetry.

Reports land in ``results/modelerror.txt`` (+ ``.json``); the CLI
exposes this as ``repro-experiments model-error``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..checkpoint import atomic_write_text
from ..core.powerest import EstimationConfig
from ..faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from ..hw import tc2_chip
from ..sim import SimConfig, Simulation
from ..tasks import build_workload
from .campaigns import DEFAULT_CAMPAIGN_GOVERNORS
from .harness import capped_tdp_w, make_governor
from .parallel import PointSpec, execute_points

#: Counter-bias window: (offset after warm-up, length).
BIAS_START_AFTER_WARMUP_S = 2.0
BIAS_WINDOW_S = 6.0
#: Power-model-drift window: (offset after warm-up, length).
DRIFT_START_AFTER_WARMUP_S = 10.0
DRIFT_WINDOW_S = 10.0

#: Default sweep grid.  ``0.0`` on either axis is the clean-signal
#: anchor every other point is judged against.
DEFAULT_ERROR_MAGNITUDES: Tuple[float, ...] = (0.0, 0.5, 2.0)
DEFAULT_DRIFT_RATES: Tuple[float, ...] = (0.0, 0.2, 0.5)


@dataclass
class ModelErrorRun:
    """Robustness summary of one governor at one (error, drift) point."""

    governor: str
    error_magnitude: float
    drift_rate_per_s: float
    miss_fraction_in_fault: float
    miss_fraction_outside_fault: float
    tdp_violation_s: float
    average_power_w: float
    estimation_error_w: Dict[str, float]
    time_to_fallback_s: Optional[float]
    estimator_state: str
    estimator_transitions: List[tuple]
    supervisor_stats: Dict[str, int]
    audit_violations: int
    fault_stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModelErrorResult:
    """One model-error campaign: the full grid across governors."""

    workload: str
    duration_s: float
    seed: int
    tdp_w: float
    error_magnitudes: List[float]
    drift_rates: List[float]
    runs: List[ModelErrorRun] = field(default_factory=list)

    def as_table(self) -> str:
        header = (
            f"Model-error campaign  (workload {self.workload}, "
            f"{self.duration_s:.0f} s, seed {self.seed}, "
            f"TDP {self.tdp_w:.1f} W, errors {self.error_magnitudes}, "
            f"drift rates {self.drift_rates}/s)"
        )
        columns = (
            f"{'governor':<9} {'error':>6} {'drift/s':>8} {'miss in':>8} "
            f"{'miss out':>9} {'TDP-viol (s)':>13} {'est p50':>8} "
            f"{'est p95':>8} {'t->fallback':>12} {'final':>8} {'audits':>7}"
        )
        rows = []
        for run in self.runs:
            fallback = (
                f"{run.time_to_fallback_s:.2f}"
                if run.time_to_fallback_s is not None
                else "never"
            )
            rows.append(
                f"{run.governor:<9} {run.error_magnitude:>6.2f} "
                f"{run.drift_rate_per_s:>8.2f} "
                f"{run.miss_fraction_in_fault:>8.3f} "
                f"{run.miss_fraction_outside_fault:>9.3f} "
                f"{run.tdp_violation_s:>13.2f} "
                f"{run.estimation_error_w.get('p50', 0.0):>8.3f} "
                f"{run.estimation_error_w.get('p95', 0.0):>8.3f} "
                f"{fallback:>12} {run.estimator_state:>8} "
                f"{run.audit_violations:>7d}"
            )
        return "\n".join([header, "", columns, "-" * len(columns), *rows])

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "tdp_w": self.tdp_w,
                "error_magnitudes": self.error_magnitudes,
                "drift_rates": self.drift_rates,
                "runs": [asdict(run) for run in self.runs],
            },
            indent=2,
            sort_keys=True,
        )


def build_model_error_schedule(
    error_magnitude: float,
    drift_rate_per_s: float,
    duration_s: float,
    warmup_s: float,
    chip,
) -> FaultSchedule:
    """The disturbance for one grid point: bias window, then drift window.

    Both hit the fastest cluster (the dominant power term, so model
    error there matters most).  A zero on either axis simply omits that
    window; the (0, 0) anchor point runs fault-free.
    """
    if error_magnitude < 0:
        raise ValueError("error magnitude must be non-negative")
    if drift_rate_per_s < 0:
        raise ValueError("drift rate must be non-negative")
    hot = max(chip.clusters, key=lambda c: c.max_supply_pus).cluster_id
    events = []
    if error_magnitude > 0:
        start = warmup_s + BIAS_START_AFTER_WARMUP_S
        events.append(
            FaultEvent(
                FaultKind.COUNTER_BIAS,
                start,
                min(BIAS_WINDOW_S, max(duration_s - start - 1.0, 0.5)),
                target=hot,
                magnitude=1.0 + error_magnitude,
            )
        )
    if drift_rate_per_s > 0:
        start = warmup_s + DRIFT_START_AFTER_WARMUP_S
        window = min(DRIFT_WINDOW_S, max(duration_s - start - 1.0, 0.5))
        events.append(
            FaultEvent(
                FaultKind.POWER_MODEL_DRIFT,
                start,
                window,
                target=hot,
                magnitude=drift_rate_per_s * window,
            )
        )
    return FaultSchedule(events)


def _model_error_identity(
    workload: str,
    duration_s: float,
    warmup_s: float,
    seed: int,
    cap: float,
    governors: Sequence[str],
    error_magnitudes: Sequence[float],
    drift_rates: Sequence[float],
) -> Dict[str, object]:
    return {
        "workload": workload,
        "duration_s": duration_s,
        "warmup_s": warmup_s,
        "seed": seed,
        "tdp_w": cap,
        "governors": list(governors),
        "error_magnitudes": list(error_magnitudes),
        "drift_rates": list(drift_rates),
    }


def _time_to_fallback(supervisor, fault_start_s: Optional[float]) -> Optional[float]:
    """Seconds from fault onset to the first analytic-model fallback."""
    if supervisor is None or fault_start_s is None:
        return None
    for time_s, _old, new, _score in supervisor.transitions:
        if new == "fallback" and time_s >= fault_start_s:
            return time_s - fault_start_s
    return None


def _model_error_point(
    identity: Dict[str, object],
    name: str,
    error_magnitude: float,
    drift_rate_per_s: float,
) -> ModelErrorRun:
    """One (governor, error, drift) grid point; picklable for workers."""
    chip = tc2_chip()
    schedule = build_model_error_schedule(
        error_magnitude,
        drift_rate_per_s,
        identity["duration_s"],
        identity["warmup_s"],
        chip,
    )
    sim = Simulation(
        chip,
        build_workload(identity["workload"]),
        make_governor(name, power_cap_w=identity["tdp_w"]),
        config=SimConfig(
            metrics_warmup_s=identity["warmup_s"],
            seed=identity["seed"],
            audit=True,
            estimation=EstimationConfig(),
        ),
    )
    injector = FaultInjector(sim, schedule).attach()
    metrics = sim.run(identity["duration_s"])
    windows = list(schedule.windows())
    supervisor = sim.estimation.supervisor
    fault_start = min((start for start, _ in windows), default=None)
    return ModelErrorRun(
        governor=name,
        error_magnitude=error_magnitude,
        drift_rate_per_s=drift_rate_per_s,
        miss_fraction_in_fault=metrics.miss_fraction_in_windows(windows),
        miss_fraction_outside_fault=metrics.miss_fraction_outside_windows(
            windows
        ),
        tdp_violation_s=metrics.tdp_violation_seconds(
            identity["tdp_w"], sim.dt
        ),
        average_power_w=metrics.average_power_w(),
        estimation_error_w=metrics.estimation_error_percentiles(),
        time_to_fallback_s=_time_to_fallback(supervisor, fault_start),
        estimator_state=(
            supervisor.state.value if supervisor is not None else "unsupervised"
        ),
        estimator_transitions=(
            list(supervisor.transitions) if supervisor is not None else []
        ),
        supervisor_stats=(
            supervisor.stats() if supervisor is not None else {}
        ),
        audit_violations=metrics.audit_violation_count(),
        fault_stats=injector.stats(),
    )


def run_model_error_campaign(
    governors: Sequence[str] = DEFAULT_CAMPAIGN_GOVERNORS,
    workload: str = "m2",
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    error_magnitudes: Sequence[float] = DEFAULT_ERROR_MAGNITUDES,
    drift_rates: Sequence[float] = DEFAULT_DRIFT_RATES,
    seed: int = 1,
    power_cap_w: Optional[float] = None,
    jobs: Optional[int] = None,
) -> ModelErrorResult:
    """Sweep estimation error magnitude x drift rate across governors.

    Every grid point replays the same workload under the same seed with
    only the disturbance changing, so differences between rows are
    attributable to the (error, drift) pair alone.  The Figure 6 power
    cap applies by default so TDP overshoot is meaningful.
    """
    if not error_magnitudes or not drift_rates:
        raise ValueError("need at least one error magnitude and one drift rate")
    cap = power_cap_w if power_cap_w is not None else capped_tdp_w()
    identity = _model_error_identity(
        workload,
        duration_s,
        warmup_s,
        seed,
        cap,
        governors,
        error_magnitudes,
        drift_rates,
    )
    result = ModelErrorResult(
        workload=workload,
        duration_s=duration_s,
        seed=seed,
        tdp_w=cap,
        error_magnitudes=list(error_magnitudes),
        drift_rates=list(drift_rates),
    )
    specs = [
        PointSpec(
            fn=_model_error_point,
            label=f"model-error {name}/e{error:g}/d{drift:g}",
            args=(identity, name, error, drift),
        )
        for name in governors
        for error in error_magnitudes
        for drift in drift_rates
    ]
    result.runs.extend(execute_points(specs, jobs=jobs))
    return result


def write_model_error_report(
    result: ModelErrorResult, out_dir: str = "results"
) -> str:
    """Write the campaign table and JSON under ``out_dir``; returns the path."""
    stem = os.path.join(out_dir, "modelerror")
    atomic_write_text(stem + ".txt", result.as_table() + "\n")
    atomic_write_text(stem + ".json", result.to_json() + "\n")
    return stem + ".txt"
