"""Experiment harnesses regenerating every table and figure of the paper.

* Tables 1-4: :mod:`repro.experiments.running_examples`
* Figures 4-6: :mod:`repro.experiments.comparative`
* Figure 7: :mod:`repro.experiments.priorities`
* Figure 8: :mod:`repro.experiments.savings`
* Table 7: :mod:`repro.experiments.scalability`
* CLI: ``repro-experiments <table1|...|fig8|all>``
"""

from .campaigns import (
    CAMPAIGN_FAULTS,
    CampaignResult,
    CampaignRun,
    DEFAULT_CAMPAIGN_GOVERNORS,
    SoakResult,
    SoakRun,
    build_campaign_schedule,
    build_soak_schedule,
    merged_windows,
    run_fault_campaign,
    run_soak,
    write_campaign_report,
    write_soak_report,
)
from .comparative import ComparativeResult, figure4, figure5, figure6, run_comparative
from .modelerror import (
    DEFAULT_DRIFT_RATES,
    DEFAULT_ERROR_MAGNITUDES,
    ModelErrorResult,
    ModelErrorRun,
    build_model_error_schedule,
    run_model_error_campaign,
    write_model_error_report,
)
from .harness import (
    DEFAULT_DURATION_S,
    DEFAULT_WARMUP_S,
    GOVERNOR_NAMES,
    RunResult,
    capped_tdp_w,
    make_governor,
    run_system,
    run_workload,
)
from .overload import (
    OVERLOAD_MULTIPLIER,
    OVERLOAD_TDP_W,
    OverloadResult,
    OverloadRun,
    OverloadSoakResult,
    OverloadSoakRun,
    build_overload_arrivals,
    run_overload,
    run_overload_soak,
    write_overload_report,
    write_overload_soak_report,
)
from .priorities import PriorityResult, figure7, run_priority_experiment
from .running_examples import SingleCoreScenario, table1, table2, table3, table4
from .savings import SavingsResult, figure8, run_savings_experiment
from .sweeps import SweepPoint, SweepResult, sweep_parameter
from .validation import ClaimResult, ValidationReport, validate_reproduction
from .scalability import (
    TABLE7_CONFIGS,
    ConstrainedCoreEmulator,
    FullSimPoint,
    ScalabilityPoint,
    full_sim_points,
    measure_overhead,
    table7,
    table7_extended,
)

__all__ = [
    "CAMPAIGN_FAULTS",
    "CampaignResult",
    "CampaignRun",
    "DEFAULT_CAMPAIGN_GOVERNORS",
    "SoakResult",
    "SoakRun",
    "build_campaign_schedule",
    "build_soak_schedule",
    "merged_windows",
    "ComparativeResult",
    "DEFAULT_DRIFT_RATES",
    "DEFAULT_ERROR_MAGNITUDES",
    "ModelErrorResult",
    "ModelErrorRun",
    "build_model_error_schedule",
    "run_model_error_campaign",
    "write_model_error_report",
    "run_fault_campaign",
    "run_soak",
    "write_campaign_report",
    "write_soak_report",
    "ConstrainedCoreEmulator",
    "OVERLOAD_MULTIPLIER",
    "OVERLOAD_TDP_W",
    "OverloadResult",
    "OverloadRun",
    "OverloadSoakResult",
    "OverloadSoakRun",
    "build_overload_arrivals",
    "run_overload",
    "run_overload_soak",
    "write_overload_report",
    "write_overload_soak_report",
    "DEFAULT_DURATION_S",
    "DEFAULT_WARMUP_S",
    "GOVERNOR_NAMES",
    "PriorityResult",
    "RunResult",
    "SavingsResult",
    "ScalabilityPoint",
    "SingleCoreScenario",
    "SweepPoint",
    "SweepResult",
    "ClaimResult",
    "ValidationReport",
    "TABLE7_CONFIGS",
    "capped_tdp_w",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "make_governor",
    "measure_overhead",
    "run_comparative",
    "run_priority_experiment",
    "run_savings_experiment",
    "run_system",
    "run_workload",
    "sweep_parameter",
    "table1",
    "table2",
    "table3",
    "table4",
    "table7",
    "table7_extended",
    "full_sim_points",
    "FullSimPoint",
    "validate_reproduction",
]
