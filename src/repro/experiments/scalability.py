"""The scalability study: Table 7.

The paper emulates large systems by feeding randomly generated task and
cluster state to a single constrained core and measuring the time that
core spends in the supply-demand module plus the LBT module per 190 ms
migration interval, for up to 256 clusters x 16 cores x 32 tasks per core
(131,072 tasks).  Supplies and demands are drawn from 10-50 PUs and the
cluster maximum supplies from 350-3000 PUs.

The emulator below performs, with the same asymptotic shape (``T x V x
M``), exactly the computations the constrained core owns:

* supply-demand module: one Equation 1 bid update, price discovery and
  purchase for each local task;
* LBT module: for each local task and each remote cluster, estimate the
  steady-state demand on the target core type, the required V-F level
  (demand rounded up the supply ladder), the Equation 2 price recursion,
  and the candidate mapping's ``perf``/``spend`` contribution against the
  current mapping.

Remote-cluster aggregates are precomputed once per invocation, matching
the paper's hierarchically disseminated summaries ("all the information
required for the estimation is hierarchically disseminated ... and kept
consistent with periodic message passing").

Absolute milliseconds are *not* comparable to the paper's (they measure
optimised C on a 350 MHz Cortex-A7; this is Python on a workstation);
the table's reproduced property is the growth of overhead with tasks,
cores and clusters, and its order of magnitude per 190 ms interval.
"""

from __future__ import annotations

import bisect
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .parallel import PointSpec, execute_points
from .reporting import format_table

#: (clusters, cores per cluster, tasks per core) rows of Table 7.
TABLE7_CONFIGS: Tuple[Tuple[int, int, int], ...] = (
    (2, 4, 8),
    (2, 4, 32),
    (4, 8, 8),
    (4, 8, 32),
    (16, 8, 8),
    (16, 8, 32),
    (16, 16, 8),
    (16, 16, 32),
    (256, 8, 8),
    (256, 8, 32),
    (256, 16, 8),
    (256, 16, 32),
)

#: The migration interval the overhead is reported against (section 3.4).
MIGRATION_INTERVAL_MS = 190.0


@dataclass
class RemoteClusterSummary:
    """Aggregates a cluster agent disseminates to constrained cores."""

    supply_ladder: List[float]
    level_index: int
    price: float
    target_core_free_pus: float  #: over-supply of its best candidate core
    speedup: float  #: relative per-PU work factor vs the local core type


@dataclass
class LocalTask:
    """Market state of one task on the constrained core."""

    priority: int
    demand: float
    supply: float
    bid: float


@dataclass
class ScalabilityPoint:
    """One row of Table 7."""

    clusters: int
    cores_per_cluster: int
    tasks_per_core: int
    avg_overhead_ms: float
    avg_overhead_pct: float  #: of the 190 ms migration interval

    @property
    def total_tasks(self) -> int:
        return self.clusters * self.cores_per_cluster * self.tasks_per_core


class ConstrainedCoreEmulator:
    """Performs the constrained core's per-invocation market work."""

    def __init__(
        self,
        n_clusters: int,
        cores_per_cluster: int,
        tasks_per_core: int,
        seed: Optional[int] = None,
        tolerance: float = 0.15,
        bmin: float = 0.01,
    ):
        rng = random.Random(seed)
        self.tolerance = tolerance
        self.bmin = bmin
        self.core_supply = 350.0  # the A7 core at its lowest level
        self.tasks: List[LocalTask] = [
            LocalTask(
                priority=rng.randint(1, 8),
                demand=rng.uniform(10.0, 50.0),
                supply=rng.uniform(10.0, 50.0),
                bid=rng.uniform(0.5, 2.0),
            )
            for _ in range(tasks_per_core)
        ]
        self.remote: List[RemoteClusterSummary] = []
        for _ in range(n_clusters - 1):
            max_supply = rng.uniform(350.0, 3000.0)
            ladder = [max_supply * (k + 1) / 8.0 for k in range(8)]
            self.remote.append(
                RemoteClusterSummary(
                    supply_ladder=ladder,
                    level_index=rng.randrange(8),
                    price=rng.uniform(0.001, 0.01),
                    target_core_free_pus=rng.uniform(10.0, 50.0) * cores_per_cluster,
                    speedup=rng.uniform(0.5, 2.0),
                )
            )

    # -- the supply-demand module's local work ---------------------------------
    def run_supply_demand_round(self) -> float:
        """Equation 1 bids, price discovery and purchase for local tasks."""
        price = sum(t.bid for t in self.tasks) / self.core_supply
        for task in self.tasks:
            desired = task.bid + (task.demand - task.supply) * price
            task.bid = max(self.bmin, desired)
        price = sum(t.bid for t in self.tasks) / self.core_supply
        for task in self.tasks:
            task.supply = task.bid / price
        return price

    # -- the LBT module's speculation -------------------------------------------
    def run_lbt_invocation(self) -> Tuple[float, int]:
        """Estimate every (local task x remote cluster) candidate mapping.

        Returns (best spend saving, index of best candidate) so the work
        cannot be optimised away.
        """
        local_price = sum(t.bid for t in self.tasks) / self.core_supply
        current_spend = sum(t.bid for t in self.tasks)
        best_saving = 0.0
        best_index = -1
        index = 0
        for task in self.tasks:
            local_ratio = min(1.0, task.supply / task.demand)
            for cluster in self.remote:
                # Demand on the target core type (off-line profile scaling).
                demand_there = task.demand / cluster.speedup
                # Required V-F level: demand rounded up the supply ladder.
                load_there = demand_there + (
                    cluster.supply_ladder[cluster.level_index]
                    - cluster.target_core_free_pus
                )
                target_level = bisect.bisect_left(cluster.supply_ladder, load_there)
                if target_level >= len(cluster.supply_ladder):
                    target_level = len(cluster.supply_ladder) - 1
                # Equation 2 price recursion.
                steps = target_level - cluster.level_index
                if steps >= 0:
                    price_est = cluster.price * (1.0 + self.tolerance) ** steps
                else:
                    price_est = cluster.price * (1.0 - self.tolerance) ** (-steps)
                supply_there = min(
                    demand_there, cluster.supply_ladder[target_level]
                )
                ratio_there = (
                    min(1.0, supply_there / demand_there) if demand_there else 1.0
                )
                candidate_bid = supply_there * price_est
                candidate_spend = current_spend - task.bid + candidate_bid
                saving = current_spend - candidate_spend
                if ratio_there >= local_ratio and saving > best_saving:
                    best_saving = saving
                    best_index = index
                index += 1
        return best_saving, best_index


def measure_overhead(
    n_clusters: int,
    cores_per_cluster: int,
    tasks_per_core: int,
    invocations: int = 5,
    seed: Optional[int] = 42,
) -> ScalabilityPoint:
    """Time the constrained core's work for one Table 7 configuration."""
    emulator = ConstrainedCoreEmulator(
        n_clusters, cores_per_cluster, tasks_per_core, seed=seed
    )
    # Warm-up invocation (bytecode caches, allocator).
    emulator.run_supply_demand_round()
    emulator.run_lbt_invocation()
    start = time.perf_counter()
    sink = 0.0
    for _ in range(invocations):
        # Per 190 ms migration interval: 6 bid rounds + 1 LBT invocation.
        for _ in range(6):
            sink += emulator.run_supply_demand_round()
        saving, _ = emulator.run_lbt_invocation()
        sink += saving
    elapsed = time.perf_counter() - start
    avg_ms = elapsed / invocations * 1000.0
    return ScalabilityPoint(
        clusters=n_clusters,
        cores_per_cluster=cores_per_cluster,
        tasks_per_core=tasks_per_core,
        avg_overhead_ms=avg_ms,
        avg_overhead_pct=100.0 * avg_ms / MIGRATION_INTERVAL_MS,
    )


#: Task populations for the full-engine extension rows (and the sim
#: seconds each is run for -- a 10,000-task tick costs hundreds of
#: milliseconds, so the largest point keeps the run short).
FULL_SIM_SIZES: Tuple[Tuple[int, float], ...] = (
    (50, 2.0),
    (1000, 1.0),
    (10000, 0.2),
)


@dataclass
class FullSimPoint:
    """One full-engine row of the extended Table 7."""

    tasks: int
    sim_s: float
    ticks: int
    columnar_ticks_per_s: float
    object_ticks_per_s: float
    #: Columnar engine forced to per-tick write-through
    #: (``REPRO_COLUMNAR_SYNC=eager``); the gap to the lazy default is
    #: the measured cost of materialising the object view every tick.
    eager_ticks_per_s: float = 0.0

    @property
    def write_through_cost_pct(self) -> float:
        """Throughput lost to eager per-tick write-through, in percent."""
        if self.columnar_ticks_per_s <= 0.0 or self.eager_ticks_per_s <= 0.0:
            return 0.0
        return 100.0 * (1.0 - self.eager_ticks_per_s / self.columnar_ticks_per_s)

    @property
    def speedup(self) -> float:
        if self.object_ticks_per_s <= 0.0:
            return float("inf")
        return self.columnar_ticks_per_s / self.object_ticks_per_s

    @property
    def ms_per_tick(self) -> float:
        if self.columnar_ticks_per_s <= 0.0:
            return float("inf")
        return 1000.0 / self.columnar_ticks_per_s

    @property
    def overhead_per_interval_ms(self) -> float:
        """Wall ms spent per 190 ms of simulated time (19 ticks)."""
        return self.ms_per_tick * (MIGRATION_INTERVAL_MS / 10.0)


def _time_full_sim(
    n_tasks: int, sim_s: float, engine: str, sync_mode: Optional[str] = None
) -> float:
    """Ticks/s of one full simulation run at ``n_tasks`` tasks."""
    from ..hw import tc2_chip
    from ..sim import SimConfig, Simulation
    from ..tasks import random_tasks
    from .harness import make_governor

    sim = Simulation(
        tc2_chip(),
        random_tasks(n_tasks, seed=7),
        make_governor("PPM", power_cap_w=8.0),
        config=SimConfig(
            seed=7, metrics_warmup_s=sim_s / 4.0, engine=engine
        ),
    )
    if sync_mode is not None:
        sim.sync_mode = sync_mode
    start = time.perf_counter()
    sim.run(sim_s)
    elapsed = time.perf_counter() - start
    return round(sim_s / 0.01) / elapsed


def full_sim_points(
    sizes: Sequence[Tuple[int, float]] = FULL_SIM_SIZES,
    repeats: int = 2,
) -> List[FullSimPoint]:
    """Time the *actual* engine (both loops) at Table 7 populations.

    The paper's Table 7 emulates the constrained core's work; these rows
    run the complete simulator -- market, LBT, dispatch, telemetry -- at
    1,000 and 10,000 tasks, which the columnar tick engine makes
    tractable end to end.  Both engines produce bit-identical telemetry
    (``tests/sim/test_columnar_equivalence.py``), so the speedup column
    is a pure implementation comparison.
    """
    # Warm-up run: the first simulation in a process pays allocator and
    # CPU-frequency ramp costs that would bias whichever column runs
    # first (the lazy-vs-eager delta is small enough to be swamped).
    _time_full_sim(50, 0.3, "columnar", "lazy")

    def _best(*args) -> float:
        return max(_time_full_sim(*args) for _ in range(max(1, repeats)))

    points = []
    for n_tasks, sim_s in sizes:
        columnar = _best(n_tasks, sim_s, "columnar", "lazy")
        eager = _best(n_tasks, sim_s, "columnar", "eager")
        obj = _best(n_tasks, sim_s, "object")
        points.append(
            FullSimPoint(
                tasks=n_tasks,
                sim_s=sim_s,
                ticks=round(sim_s / 0.01),
                columnar_ticks_per_s=columnar,
                object_ticks_per_s=obj,
                eager_ticks_per_s=eager,
            )
        )
    return points


def table7_extended(
    configs: Sequence[Tuple[int, int, int]] = TABLE7_CONFIGS,
    invocations: int = 5,
    jobs: Optional[int] = None,
    sizes: Sequence[Tuple[int, float]] = FULL_SIM_SIZES,
) -> Tuple[List[ScalabilityPoint], List[FullSimPoint], str]:
    """Table 7 plus full-engine rows at 50 / 1,000 / 10,000 tasks."""
    points, text = table7(configs=configs, invocations=invocations, jobs=jobs)
    sim_points = full_sim_points(sizes=sizes)
    rows = [
        [
            p.tasks,
            p.ticks,
            f"{p.columnar_ticks_per_s:.1f}",
            f"{p.eager_ticks_per_s:.1f}",
            f"{p.write_through_cost_pct:.1f}",
            f"{p.object_ticks_per_s:.1f}",
            f"{p.speedup:.2f}",
            f"{p.ms_per_tick:.2f}",
            f"{p.overhead_per_interval_ms:.1f}",
        ]
        for p in sim_points
    ]
    extra = format_table(
        [
            "tasks",
            "ticks",
            "lazy t/s",
            "eager t/s",
            "write-through [%]",
            "object t/s",
            "speedup",
            "ms/tick",
            "wall ms / 190 ms interval",
        ],
        rows,
        title=(
            "Table 7 (extended): full-engine wall cost at scale "
            "(columnar lazy/eager vs object tick loop)"
        ),
    )
    return points, sim_points, text + "\n\n" + extra


def table7(
    configs: Sequence[Tuple[int, int, int]] = TABLE7_CONFIGS,
    invocations: int = 5,
    jobs: Optional[int] = None,
) -> Tuple[List[ScalabilityPoint], str]:
    """Regenerate Table 7 over the paper's configurations.

    With ``jobs`` > 1 the configurations are timed in worker processes.
    The emulated *work* is identical, but wall-clock overhead numbers are
    then measured under CPU contention -- use multiple jobs to smoke-test
    the table quickly, and a single job for quotable measurements.
    """
    specs = [
        PointSpec(
            fn=measure_overhead,
            label=f"table7 V={v} C={c} T={t}",
            args=(v, c, t),
            kwargs={"invocations": invocations},
        )
        for (v, c, t) in configs
    ]
    points = execute_points(specs, jobs=jobs)
    rows = [
        [
            p.clusters,
            p.cores_per_cluster,
            p.tasks_per_core,
            p.total_tasks,
            f"{p.avg_overhead_pct:.2f}",
            f"{p.avg_overhead_ms:.3f}",
        ]
        for p in points
    ]
    text = format_table(
        ["V", "C", "T", "total tasks", "avg overhead [%]", "avg overhead [ms]"],
        rows,
        title=(
            "Table 7: constrained-core overhead per 190 ms migration interval"
        ),
    )
    return points, text
