"""Process-pool execution of independent experiment points.

Every experiment in this package is a fan-out over independent *points*
(governor x workload, sweep value, Table 7 configuration, campaign
governor): each point builds its own chip, workload and governor from
explicit parameters and a fixed seed, so points share no mutable state
and their results are a pure function of the spec.  That makes them
safe to farm out to worker processes.

Determinism is preserved by construction:

* a :class:`PointSpec` carries only picklable values (the target is a
  top-level function, arguments are primitives/dataclasses), so the
  child rebuilds exactly the same simulation the serial path would;
* every stochastic input is derived inside the point from the seed in
  its spec (via ``derive_stream_seed``-style sub-seeding), never from
  process-global RNG state;
* results are returned in *spec order* regardless of completion order,
  so reports built from them are byte-identical to a serial run.

``--jobs 1`` (the default) bypasses the pool entirely and runs points
in-process, which keeps single-job behaviour exactly as before and
keeps pdb/coverage friendly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class PointSpec:
    """One independent experiment point, ready to run in any process.

    Attributes:
        fn: Top-level function executing the point (must be picklable,
            i.e. importable by qualified name -- no lambdas/closures).
        label: Stable human-readable identity of the point; used in
            progress/error messages and useful as a report key.
        args: Positional arguments for ``fn``.
        kwargs: Keyword arguments for ``fn``.
    """

    fn: Callable[..., Any]
    label: str
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Determine the worker count: explicit value, else ``$REPRO_JOBS``, else 1.

    Raises:
        ValueError: On a non-positive or non-integer job count.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be a positive integer, got {env!r}"
            )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_point(spec: PointSpec) -> Any:
    """Module-level trampoline so the pool pickles specs, not closures."""
    return spec.run()


def execute_points(
    specs: Sequence[PointSpec], jobs: Optional[int] = None
) -> List[Any]:
    """Run every spec and return results in spec order.

    With ``jobs <= 1`` (after :func:`resolve_jobs` resolution) the specs
    run serially in-process -- this is the exact pre-parallel code path.
    With more jobs, specs are distributed over a process pool; the pool's
    ``map`` keeps result order aligned with spec order, so downstream
    report builders cannot observe the difference.

    A failing point propagates its exception to the caller in both modes
    (the pool is torn down first), annotated with the point's label.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        # Serial mode is the pre-parallel code path, bit for bit: same
        # process, same call order, exceptions untouched.
        return [spec.run() for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_point, spec) for spec in specs]
        results: List[Any] = []
        for spec, future in zip(specs, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                exc.args = (
                    f"experiment point {spec.label!r} failed: {exc}",
                ) + exc.args[1:]
                raise
    return results
