"""Command-line front end: regenerate any table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig4 --duration 120
    repro-experiments fig7
    repro-experiments table7
    repro-experiments all --duration 60
    repro-experiments campaign --fault sensor-dropout
    repro-experiments campaign --fault thermal-runaway
    repro-experiments soak --soak-duration 120
    repro-experiments checkpoint --fault hotplug --checkpoint-dir results/ckpt
    repro-experiments resume --checkpoint-dir results/ckpt
    repro-experiments replay --checkpoint-dir results/ckpt --verify
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..checkpoint import CheckpointError
from .campaigns import (
    CAMPAIGN_FAULTS,
    DEFAULT_CAMPAIGN_GOVERNORS,
    replay_campaign_checkpoint,
    resume_fault_campaign,
    run_fault_campaign,
    run_soak,
    write_campaign_report,
    write_soak_report,
)
from .harness import GOVERNOR_NAMES

#: Where campaign checkpoints land unless ``--checkpoint-dir`` says otherwise.
DEFAULT_CHECKPOINT_DIR = "results/checkpoints"
from .comparative import figure4, figure5, figure6, run_comparative
from .priorities import figure7
from .running_examples import table1, table2, table3, table4
from .savings import figure8
from .scalability import table7
from .validation import validate_reproduction


def _run_table1(args) -> str:
    return table1()[1]


def _run_table2(args) -> str:
    return table2()[1]


def _run_table3(args) -> str:
    return table3()[1]


def _run_table4(args) -> str:
    return table4()


def _export(result, path):
    if path:
        from ..analysis import write_comparative

        write_comparative(result, path)


def _audit_suffix(args, result) -> str:
    if not args.strict_audit:
        return ""
    return f"\n\nmarket audit violations: {result.total_audit_violations()}"


def _run_fig4(args) -> str:
    result = run_comparative(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    text4 = figure4(result=result)[1]
    text5 = figure5(result=result)[1]
    _export(result, args.export)
    return text4 + "\n\n" + text5 + _audit_suffix(args, result)


def _run_fig5(args) -> str:
    result, text = figure5(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    return text + _audit_suffix(args, result)


def _run_fig6(args) -> str:
    result, text = figure6(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    _export(result, args.export)
    return text + _audit_suffix(args, result)


def _run_fig7(args) -> str:
    return figure7(duration_s=args.fig_duration)[2]


def _run_fig8(args) -> str:
    return figure8()[1]


def _run_table7(args) -> str:
    return table7(invocations=args.invocations, jobs=args.jobs)[1]


def _run_validate(args) -> str:
    report = validate_reproduction(quick=not args.full)
    status = "ALL CLAIMS PASS" if report.passed else "SOME CLAIMS FAILED"
    return report.as_table() + "\n" + status


def _parse_governors(spec: str) -> List[str]:
    """Split and validate a ``--governors`` list; exits cleanly on bad names."""
    governors = [g.strip() for g in spec.split(",") if g.strip()]
    if not governors:
        raise SystemExit(
            "no governors given; valid choices: " + ", ".join(GOVERNOR_NAMES)
        )
    unknown = [g for g in governors if g not in GOVERNOR_NAMES]
    if unknown:
        raise SystemExit(
            "unknown governor(s) "
            + ", ".join(repr(g) for g in unknown)
            + "; valid choices: "
            + ", ".join(GOVERNOR_NAMES)
        )
    return governors


def _run_campaign(args) -> str:
    if args.fault is None:
        raise SystemExit("campaign requires --fault (e.g. --fault sensor-dropout)")
    governors = _parse_governors(args.governors)
    result = run_fault_campaign(
        args.fault,
        governors=governors,
        workload=args.workload,
        duration_s=args.campaign_duration,
        warmup_s=args.campaign_warmup,
        intensity=args.intensity,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval_s=args.checkpoint_interval,
        jobs=args.jobs,
    )
    path = write_campaign_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_soak(args) -> str:
    governors = _parse_governors(args.governors)
    result = run_soak(
        governors=governors,
        workload=args.workload,
        duration_s=args.soak_duration,
        warmup_s=args.campaign_warmup,
        seed=args.seed,
        jobs=args.jobs,
    )
    path = write_soak_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_checkpoint(args) -> str:
    """``campaign`` with checkpointing always on (default directory)."""
    if args.checkpoint_dir is None:
        args.checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    return _run_campaign(args)


def _run_resume(args) -> str:
    directory = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
    try:
        result = resume_fault_campaign(
            directory,
            checkpoint_interval_s=args.checkpoint_interval,
            jobs=args.jobs,
        )
    except CheckpointError as exc:
        raise SystemExit(f"resume failed: {exc}")
    path = write_campaign_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_replay(args) -> str:
    directory = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
    try:
        report = replay_campaign_checkpoint(directory)
    except CheckpointError as exc:
        raise SystemExit(f"replay failed: {exc}")
    text = report.describe()
    if args.verify and not report.clean:
        raise SystemExit(text)
    return text


_COMMANDS = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "table7": _run_table7,
    "validate": _run_validate,
}

#: Commands excluded from ``all`` (campaigns are a study, not a figure).
_EXTRA_COMMANDS = {
    "campaign": _run_campaign,
    "soak": _run_soak,
    "checkpoint": _run_checkpoint,
    "resume": _run_resume,
    "replay": _run_replay,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + sorted(_EXTRA_COMMANDS) + ["all"],
        help="which table/figure to regenerate (or 'campaign')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent experiment points "
            "(default: $REPRO_JOBS or 1; results are identical at any "
            "job count)"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="simulated seconds per comparative run (figs 4-6)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=30.0,
        help="warm-up seconds excluded from summaries (figs 4-6)",
    )
    parser.add_argument(
        "--fig-duration",
        type=float,
        default=300.0,
        help="simulated seconds for the figure 7 runs",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=5,
        help="timed LBT invocations per table 7 configuration",
    )
    parser.add_argument(
        "--export",
        default=None,
        help="write the comparative sweep to this .json/.csv path (figs 4-6)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="validate with benchmark-grade durations instead of quick runs",
    )
    parser.add_argument(
        "--strict-audit",
        action="store_true",
        help=(
            "run the market auditor every round of the comparative sweeps "
            "(figs 4-6) and report the violation total; slower, off by "
            "default (campaign and soak runs always audit)"
        ),
    )
    campaign = parser.add_argument_group("fault campaigns")
    campaign.add_argument(
        "--fault",
        choices=sorted(CAMPAIGN_FAULTS),
        default=None,
        help="fault kind to inject (campaign command)",
    )
    campaign.add_argument(
        "--governors",
        default=",".join(DEFAULT_CAMPAIGN_GOVERNORS),
        help="comma-separated governors to sweep (default: PPM,HPM,HL)",
    )
    campaign.add_argument(
        "--workload",
        default="m2",
        help="workload set for the campaign (default: m2)",
    )
    campaign.add_argument(
        "--intensity",
        type=float,
        default=0.3,
        help="fraction of time under fault, in (0, 0.8] (default: 0.3)",
    )
    campaign.add_argument(
        "--campaign-duration",
        type=float,
        default=40.0,
        help="simulated seconds per campaign run (default: 40)",
    )
    campaign.add_argument(
        "--campaign-warmup",
        type=float,
        default=5.0,
        help="warm-up seconds per campaign run (default: 5)",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=1,
        help="engine seed for campaign runs (default: 1)",
    )
    campaign.add_argument(
        "--soak-duration",
        type=float,
        default=120.0,
        help="simulated seconds for the soak command (default: 120)",
    )
    campaign.add_argument(
        "--out",
        default="results",
        help="directory for campaign reports (default: results/)",
    )
    checkpointing = parser.add_argument_group("checkpoint / resume / replay")
    checkpointing.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "write/read campaign checkpoints here (checkpoint/resume/replay "
            f"default to {DEFAULT_CHECKPOINT_DIR}/)"
        ),
    )
    checkpointing.add_argument(
        "--checkpoint-interval",
        type=float,
        default=1.0,
        help="simulated seconds between checkpoints (default: 1.0)",
    )
    checkpointing.add_argument(
        "--verify",
        action="store_true",
        help="replay: exit non-zero if the replay diverges from the journal",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = sorted(_COMMANDS)
    else:
        names = [args.experiment]
    commands = {**_COMMANDS, **_EXTRA_COMMANDS}
    for name in names:
        print(commands[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
