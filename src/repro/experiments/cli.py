"""Command-line front end: regenerate any table or figure.

Examples::

    repro-experiments table1
    repro-experiments fig4 --duration 120
    repro-experiments fig7
    repro-experiments table7
    repro-experiments table7x   # + full-engine rows at 1k/10k tasks
    repro-experiments all --duration 60
    repro-experiments campaign --fault sensor-dropout
    repro-experiments campaign --fault thermal-runaway
    repro-experiments soak --soak-duration 120
    repro-experiments checkpoint --fault hotplug --checkpoint-dir results/ckpt
    repro-experiments resume --checkpoint-dir results/ckpt
    repro-experiments replay --checkpoint-dir results/ckpt --verify
    repro-experiments overload --multiplier 3 --overload-duration 30
    repro-experiments overload-soak --soak-duration 60
    repro-experiments model-error --error-magnitudes 0,0.5,2 --drift-rates 0,0.2
    repro-experiments fleet --fleet-chips 8 --fleet-epochs 6
    repro-experiments fleet --fleet-fault worker-kill@2:chip03
    repro-experiments fleet --resume-fleet --fleet-dir results/fleet
    repro-experiments profile --scenario many_tasks_1k
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..checkpoint import CheckpointError
from ..tasks import DemandTrace
from .campaigns import (
    CAMPAIGN_FAULTS,
    DEFAULT_CAMPAIGN_GOVERNORS,
    replay_campaign_checkpoint,
    resume_fault_campaign,
    run_fault_campaign,
    run_soak,
    write_campaign_report,
    write_soak_report,
)
from .fleet import (
    DEFAULT_FLEET_DIR,
    resume_fleet_campaign,
    run_fleet_campaign,
    write_fleet_report,
)
from .harness import GOVERNOR_NAMES
from .modelerror import (
    DEFAULT_DRIFT_RATES,
    DEFAULT_ERROR_MAGNITUDES,
    run_model_error_campaign,
    write_model_error_report,
)
from .overload import (
    run_overload,
    run_overload_soak,
    write_overload_report,
    write_overload_soak_report,
)

#: Where campaign checkpoints land unless ``--checkpoint-dir`` says otherwise.
DEFAULT_CHECKPOINT_DIR = "results/checkpoints"
from .comparative import figure4, figure5, figure6, run_comparative
from .priorities import figure7
from .running_examples import table1, table2, table3, table4
from .savings import figure8
from .scalability import table7, table7_extended
from .validation import validate_reproduction


def _run_table1(args) -> str:
    return table1()[1]


def _run_table2(args) -> str:
    return table2()[1]


def _run_table3(args) -> str:
    return table3()[1]


def _run_table4(args) -> str:
    return table4()


def _export(result, path):
    if path:
        from ..analysis import write_comparative

        write_comparative(result, path)


def _audit_suffix(args, result) -> str:
    if not args.strict_audit:
        return ""
    return f"\n\nmarket audit violations: {result.total_audit_violations()}"


def _run_fig4(args) -> str:
    result = run_comparative(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    text4 = figure4(result=result)[1]
    text5 = figure5(result=result)[1]
    _export(result, args.export)
    return text4 + "\n\n" + text5 + _audit_suffix(args, result)


def _run_fig5(args) -> str:
    result, text = figure5(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    return text + _audit_suffix(args, result)


def _run_fig6(args) -> str:
    result, text = figure6(
        duration_s=args.duration, warmup_s=args.warmup, jobs=args.jobs,
        strict_audit=args.strict_audit,
    )
    _export(result, args.export)
    return text + _audit_suffix(args, result)


def _run_fig7(args) -> str:
    return figure7(duration_s=args.fig_duration)[2]


def _run_fig8(args) -> str:
    return figure8()[1]


def _run_table7(args) -> str:
    return table7(invocations=args.invocations, jobs=args.jobs)[1]


def _run_table7x(args) -> str:
    return table7_extended(invocations=args.invocations, jobs=args.jobs)[2]


def _run_profile(args) -> str:
    """cProfile one perf scenario; report written to results/."""
    import cProfile
    import io
    import pstats

    # The perf scenarios live in the repo-root ``benchmarks`` package
    # (they are a development tool, not part of the installed library).
    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..")
    )
    if repo_root not in sys.path:
        sys.path.insert(0, repo_root)
    try:
        from benchmarks.perf import SCENARIO_ORDER, run_scenario
    except ImportError as exc:
        raise SystemExit(
            "profile: the benchmarks package is not importable "
            f"(looked under {repo_root}); run from a source checkout"
        ) from exc
    scenario = args.scenario
    if scenario not in SCENARIO_ORDER:
        raise SystemExit(
            f"profile: unknown scenario {scenario!r}; "
            f"choose from {', '.join(SCENARIO_ORDER)}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    metrics = run_scenario(scenario, quick=True)
    profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.profile_lines)
    summary = ", ".join(
        f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
        for key, value in sorted(metrics.items())
    )
    report = (
        f"cProfile of perf scenario {scenario!r} (quick variant)\n"
        f"scenario metrics: {summary}\n\n"
        f"{stream.getvalue()}"
    )
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"profile_{scenario}.txt")
    with open(path, "w") as handle:
        handle.write(report)
    head = "\n".join(report.splitlines()[:20])
    return head + f"\n...\nprofile written to {path}"


def _run_validate(args) -> str:
    report = validate_reproduction(quick=not args.full)
    status = "ALL CLAIMS PASS" if report.passed else "SOME CLAIMS FAILED"
    return report.as_table() + "\n" + status


def _parse_governors(spec: str) -> List[str]:
    """Split and validate a ``--governors`` list; exits cleanly on bad names."""
    governors = [g.strip() for g in spec.split(",") if g.strip()]
    if not governors:
        raise SystemExit(
            "no governors given; valid choices: " + ", ".join(GOVERNOR_NAMES)
        )
    unknown = [g for g in governors if g not in GOVERNOR_NAMES]
    if unknown:
        raise SystemExit(
            "unknown governor(s) "
            + ", ".join(repr(g) for g in unknown)
            + "; valid choices: "
            + ", ".join(GOVERNOR_NAMES)
        )
    return governors


def _load_trace(path: Optional[str]):
    """Load a :class:`DemandTrace` JSON file; exits cleanly on bad paths."""
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = handle.read()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise SystemExit(f"cannot read trace file {path!r}: {reason}")
    try:
        return DemandTrace.from_json(payload)
    except ValueError as exc:
        raise SystemExit(f"invalid trace file {path!r}: {exc}")


def _checkpoint_directory(args) -> str:
    """Resolve ``--checkpoint-dir``; exits cleanly when it is unusable."""
    directory = args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR
    if not os.path.isdir(directory):
        raise SystemExit(
            f"checkpoint directory {directory!r} does not exist; run "
            "'repro-experiments checkpoint' first or pass --checkpoint-dir"
        )
    if not os.access(directory, os.R_OK):
        raise SystemExit(f"checkpoint directory {directory!r} is not readable")
    return directory


def _run_campaign(args) -> str:
    if args.fault is None:
        raise SystemExit("campaign requires --fault (e.g. --fault sensor-dropout)")
    governors = _parse_governors(args.governors)
    result = run_fault_campaign(
        args.fault,
        governors=governors,
        workload=args.workload or "m2",
        duration_s=args.campaign_duration,
        warmup_s=args.campaign_warmup,
        intensity=args.intensity,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval_s=args.checkpoint_interval,
        jobs=args.jobs,
    )
    path = write_campaign_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_soak(args) -> str:
    governors = _parse_governors(args.governors)
    result = run_soak(
        governors=governors,
        workload=args.workload or "m2",
        duration_s=args.soak_duration,
        warmup_s=args.campaign_warmup,
        seed=args.seed,
        jobs=args.jobs,
    )
    path = write_soak_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_checkpoint(args) -> str:
    """``campaign`` with checkpointing always on (default directory)."""
    if args.checkpoint_dir is None:
        args.checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    return _run_campaign(args)


def _run_resume(args) -> str:
    directory = _checkpoint_directory(args)
    try:
        result = resume_fault_campaign(
            directory,
            checkpoint_interval_s=args.checkpoint_interval,
            jobs=args.jobs,
        )
    except (CheckpointError, OSError) as exc:
        raise SystemExit(f"resume failed: {exc}")
    path = write_campaign_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_replay(args) -> str:
    directory = _checkpoint_directory(args)
    try:
        report = replay_campaign_checkpoint(directory)
    except (CheckpointError, OSError) as exc:
        raise SystemExit(f"replay failed: {exc}")
    text = report.describe()
    if args.verify and not report.clean:
        raise SystemExit(text)
    return text


def _parse_floats(spec: str, flag: str) -> List[float]:
    """Split a comma-separated float list; exits cleanly on junk."""
    values = []
    for piece in spec.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            values.append(float(piece))
        except ValueError:
            raise SystemExit(
                f"{flag} expects comma-separated numbers, got {piece!r}"
            )
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return values


def _run_model_error(args) -> str:
    governors = _parse_governors(args.governors)
    result = run_model_error_campaign(
        governors=governors,
        workload=args.workload or "m2",
        duration_s=args.campaign_duration,
        warmup_s=args.campaign_warmup,
        error_magnitudes=_parse_floats(
            args.error_magnitudes, "--error-magnitudes"
        ),
        drift_rates=_parse_floats(args.drift_rates, "--drift-rates"),
        seed=args.seed,
        jobs=args.jobs,
    )
    path = write_model_error_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_overload(args) -> str:
    governors = _parse_governors(args.governors)
    trace = _load_trace(args.trace)
    result = run_overload(
        governors=governors,
        workload=args.workload or "l1",
        duration_s=args.overload_duration,
        warmup_s=args.campaign_warmup,
        seed=args.seed,
        multiplier=args.multiplier,
        trace=trace,
        jobs=args.jobs,
    )
    path = write_overload_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_overload_soak(args) -> str:
    governors = _parse_governors(args.governors)
    trace = _load_trace(args.trace)
    result = run_overload_soak(
        governors=governors,
        workload=args.workload or "m2",
        duration_s=args.soak_duration,
        warmup_s=args.campaign_warmup,
        seed=args.seed,
        multiplier=args.multiplier,
        trace=trace,
        jobs=args.jobs,
    )
    path = write_overload_soak_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


def _run_fleet(args) -> str:
    from ..checkpoint import CheckpointError as _CheckpointError
    from ..fleet import FleetBudgetInvariantError, RetryPolicy

    try:
        if args.resume_fleet:
            result = resume_fleet_campaign(
                args.fleet_dir, strict_audit=args.strict_audit
            )
        else:
            result = run_fleet_campaign(
                chips=args.fleet_chips,
                epochs=args.fleet_epochs,
                epoch_s=args.epoch_duration,
                grid_budget_w=args.grid_budget,
                seed=args.seed,
                fleet_dir=args.fleet_dir,
                faults=args.fleet_fault or (),
                retry=RetryPolicy(timeout_s=args.fleet_timeout),
                strict_audit=args.strict_audit,
            )
    except ValueError as exc:
        raise SystemExit(f"fleet: {exc}")
    except FleetBudgetInvariantError as exc:
        raise SystemExit(f"fleet budget audit failed: {exc}")
    except (_CheckpointError, OSError) as exc:
        raise SystemExit(f"fleet resume failed: {exc}")
    path = write_fleet_report(result, out_dir=args.out)
    return result.as_table() + f"\n\nreport written to {path}"


_COMMANDS = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "table7": _run_table7,
    "validate": _run_validate,
}

#: Commands excluded from ``all`` (campaigns are a study, not a figure).
_EXTRA_COMMANDS = {
    "table7x": _run_table7x,
    "campaign": _run_campaign,
    "soak": _run_soak,
    "checkpoint": _run_checkpoint,
    "resume": _run_resume,
    "replay": _run_replay,
    "overload": _run_overload,
    "overload-soak": _run_overload_soak,
    "model-error": _run_model_error,
    "fleet": _run_fleet,
    "profile": _run_profile,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + sorted(_EXTRA_COMMANDS) + ["all"],
        help="which table/figure to regenerate (or 'campaign')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent experiment points "
            "(default: $REPRO_JOBS or 1; results are identical at any "
            "job count)"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="simulated seconds per comparative run (figs 4-6)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=30.0,
        help="warm-up seconds excluded from summaries (figs 4-6)",
    )
    parser.add_argument(
        "--fig-duration",
        type=float,
        default=300.0,
        help="simulated seconds for the figure 7 runs",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=5,
        help="timed LBT invocations per table 7 configuration",
    )
    parser.add_argument(
        "--export",
        default=None,
        help="write the comparative sweep to this .json/.csv path (figs 4-6)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="validate with benchmark-grade durations instead of quick runs",
    )
    parser.add_argument(
        "--strict-audit",
        action="store_true",
        help=(
            "run the market auditor every round of the comparative sweeps "
            "(figs 4-6) and report the violation total; slower, off by "
            "default (campaign and soak runs always audit)"
        ),
    )
    campaign = parser.add_argument_group("fault campaigns")
    campaign.add_argument(
        "--fault",
        choices=sorted(CAMPAIGN_FAULTS),
        default=None,
        help="fault kind to inject (campaign command)",
    )
    campaign.add_argument(
        "--governors",
        default=",".join(DEFAULT_CAMPAIGN_GOVERNORS),
        help="comma-separated governors to sweep (default: PPM,HPM,HL)",
    )
    campaign.add_argument(
        "--workload",
        default=None,
        help="workload set (default: m2 for campaigns/soaks, l1 for overload)",
    )
    campaign.add_argument(
        "--intensity",
        type=float,
        default=0.3,
        help="fraction of time under fault, in (0, 0.8] (default: 0.3)",
    )
    campaign.add_argument(
        "--campaign-duration",
        type=float,
        default=40.0,
        help="simulated seconds per campaign run (default: 40)",
    )
    campaign.add_argument(
        "--campaign-warmup",
        type=float,
        default=5.0,
        help="warm-up seconds per campaign run (default: 5)",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=1,
        help="engine seed for campaign runs (default: 1)",
    )
    campaign.add_argument(
        "--soak-duration",
        type=float,
        default=120.0,
        help="simulated seconds for the soak command (default: 120)",
    )
    campaign.add_argument(
        "--out",
        default="results",
        help="directory for campaign reports (default: results/)",
    )
    profile = parser.add_argument_group("profile")
    profile.add_argument(
        "--scenario",
        default="many_tasks_1k",
        help=(
            "perf scenario to profile (profile command; "
            "default: many_tasks_1k)"
        ),
    )
    profile.add_argument(
        "--profile-lines",
        type=int,
        default=40,
        help="rows in the cumulative-time report (default: 40)",
    )
    modelerror = parser.add_argument_group("model-error / estimated power")
    modelerror.add_argument(
        "--error-magnitudes",
        default=",".join(str(v) for v in DEFAULT_ERROR_MAGNITUDES),
        help=(
            "comma-separated counter-bias magnitudes to sweep "
            "(model-error command; 0 = clean counters)"
        ),
    )
    modelerror.add_argument(
        "--drift-rates",
        default=",".join(str(v) for v in DEFAULT_DRIFT_RATES),
        help=(
            "comma-separated power-model drift rates per second to sweep "
            "(model-error command; 0 = stable silicon)"
        ),
    )
    overload = parser.add_argument_group("overload / flash crowds")
    overload.add_argument(
        "--overload-duration",
        type=float,
        default=30.0,
        help="simulated seconds for the overload command (default: 30)",
    )
    overload.add_argument(
        "--multiplier",
        type=float,
        default=3.0,
        help="flash-crowd burst rate as a multiple of sustainable (default: 3)",
    )
    overload.add_argument(
        "--trace",
        default=None,
        help="DemandTrace JSON file modulating the arrival rate (optional)",
    )
    checkpointing = parser.add_argument_group("checkpoint / resume / replay")
    checkpointing.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "write/read campaign checkpoints here (checkpoint/resume/replay "
            f"default to {DEFAULT_CHECKPOINT_DIR}/)"
        ),
    )
    checkpointing.add_argument(
        "--checkpoint-interval",
        type=float,
        default=1.0,
        help="simulated seconds between checkpoints (default: 1.0)",
    )
    checkpointing.add_argument(
        "--verify",
        action="store_true",
        help="replay: exit non-zero if the replay diverges from the journal",
    )
    fleet = parser.add_argument_group("fleet campaigns (multi-chip)")
    fleet.add_argument(
        "--fleet-chips",
        type=int,
        default=8,
        help="number of chips (worker processes) in the fleet (default: 8)",
    )
    fleet.add_argument(
        "--fleet-epochs",
        type=int,
        default=6,
        help="global budget epochs to run (default: 6)",
    )
    fleet.add_argument(
        "--epoch-duration",
        type=float,
        default=0.5,
        help="simulated seconds per fleet epoch (default: 0.5)",
    )
    fleet.add_argument(
        "--grid-budget",
        type=float,
        default=None,
        help="grid power budget in watts (default: 3 W per chip)",
    )
    fleet.add_argument(
        "--fleet-fault",
        action="append",
        default=None,
        metavar="KIND@EPOCH:CHIP[:PARAM]",
        help=(
            "inject a fleet fault, e.g. worker-kill@2:chip03, "
            "worker-stall@3:chip05:45, worker-msg-loss@1:chip00:2 "
            "(repeatable)"
        ),
    )
    fleet.add_argument(
        "--fleet-dir",
        default=DEFAULT_FLEET_DIR,
        help=(
            "fleet state directory: per-chip checkpoints + manifest "
            f"(default: {DEFAULT_FLEET_DIR}/)"
        ),
    )
    fleet.add_argument(
        "--resume-fleet",
        action="store_true",
        help="resume an interrupted fleet campaign from its manifest",
    )
    fleet.add_argument(
        "--fleet-timeout",
        type=float,
        default=10.0,
        help=(
            "base per-attempt worker reply timeout in wall seconds; "
            "retries back off exponentially from here (default: 10)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = sorted(_COMMANDS)
    else:
        names = [args.experiment]
    commands = {**_COMMANDS, **_EXTRA_COMMANDS}
    for name in names:
        print(commands[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
