"""Open-ended task arrival/departure processes.

The paper's experiments clear a *fixed* task set against the chip; a
deployed power manager instead faces an endless stream of short-lived
requests whose rate it does not control.  This module generates such
streams: seed-deterministic arrival processes that feed short-lived
heartbeat tasks into a running :class:`~repro.sim.engine.Simulation`
(via :class:`~repro.core.admission.OverloadManager`) instead of a fixed
workload set.

Four processes cover the classic open-system shapes:

* ``poisson`` -- homogeneous Poisson arrivals at ``rate_hz``;
* ``mmpp`` -- a Markov-modulated Poisson process switching between
  ``mmpp_rates`` with exponentially distributed dwell times (bursty
  traffic with long-range correlation);
* ``diurnal`` -- a sinusoidally rate-modulated Poisson process (the
  day/night cycle of a service);
* ``flash-crowd`` -- base-rate Poisson with rectangular bursts at
  ``burst_rate_hz`` (the overload scenario the admission ladder exists
  for).

Any process can additionally be rate-modulated by a replayable
:class:`~repro.tasks.traces.DemandTrace` (trace-driven arrivals).

Generation is *incremental* (one arrival drawn ahead) via Ogata
thinning against the process's maximum rate, so a stream is open-ended,
O(1) per tick, and -- because every draw comes from one private
``random.Random`` -- bit-reproducible from ``(config, seed)`` alone and
snapshot/restorable mid-stream for checkpoint/resume.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from .benchmarks import BENCHMARK_SPECS, INPUT_CODES, make_task
from .task import Task
from .traces import DemandTrace

#: Valid values of :attr:`ArrivalConfig.process`.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal", "flash-crowd")

#: Default benchmark/input catalogue for arrival-spawned heartbeat tasks:
#: the lighter half of the Table 5 suite, so a single request never
#: dwarfs the chip and overload comes from *many* requests, as in a
#: service under a flash crowd.
DEFAULT_CATALOGUE: Tuple[Tuple[str, str], ...] = (
    ("blackscholes", "l"),
    ("h264", "s"),
    ("multicnt", "v"),
    ("texture", "v"),
    ("x264", "l"),
    ("swaptions", "l"),
)


def nominal_demand_a7_pus(benchmark: str, input_code: str) -> float:
    """Off-line profiled A7 demand of one benchmark/input pair (PUs)."""
    label = INPUT_CODES.get(input_code, input_code)
    try:
        return BENCHMARK_SPECS[(benchmark, label)].demand_a7_pus
    except KeyError:
        raise KeyError(f"unknown benchmark/input: {benchmark}/{input_code}") from None


@dataclass(frozen=True)
class ArrivalConfig:
    """Parameters of one arrival stream.

    Attributes:
        process: One of :data:`ARRIVAL_PROCESSES`.
        rate_hz: Base arrival rate (mean arrivals per simulated second).
        burst_rate_hz: Peak rate during flash-crowd bursts (>= rate_hz).
        burst_start_s: When the first burst begins.
        burst_duration_s: Length of each burst.
        burst_period_s: Burst repetition period; 0 means a single burst.
        mmpp_rates: Per-state rates of the MMPP (at least two).
        mmpp_dwell_s: Mean exponential dwell time in each MMPP state.
        diurnal_period_s: Period of the diurnal cycle.
        diurnal_depth: Relative swing of the diurnal rate, in [0, 1);
            the rate moves through ``rate_hz * (1 +/- depth)``.
        lifetime_s: ``(min, max)`` of the uniform task lifetime.
        priorities: Priority values drawn uniformly per arrival.
        catalogue: Benchmark/input pairs drawn uniformly per arrival.
        hrm_window_s: Heart-rate window of spawned tasks.
        max_phase_offset_s: Spawned tasks get a uniform phase offset in
            ``[0, max_phase_offset_s)`` so identical benchmarks do not
            move in lockstep.
    """

    process: str = "poisson"
    rate_hz: float = 1.0
    burst_rate_hz: float = 0.0
    burst_start_s: float = 0.0
    burst_duration_s: float = 0.0
    burst_period_s: float = 0.0
    mmpp_rates: Tuple[float, ...] = ()
    mmpp_dwell_s: float = 5.0
    diurnal_period_s: float = 60.0
    diurnal_depth: float = 0.5
    lifetime_s: Tuple[float, float] = (2.0, 6.0)
    priorities: Tuple[int, ...] = (1, 2, 4)
    catalogue: Tuple[Tuple[str, str], ...] = DEFAULT_CATALOGUE
    hrm_window_s: float = 0.5
    max_phase_offset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"process must be one of {ARRIVAL_PROCESSES}, got {self.process!r}"
            )
        if not (math.isfinite(self.rate_hz) and self.rate_hz > 0):
            raise ValueError("rate_hz must be positive and finite")
        if self.process == "mmpp":
            if len(self.mmpp_rates) < 2:
                raise ValueError("mmpp needs at least two mmpp_rates")
            if any(not math.isfinite(r) or r <= 0 for r in self.mmpp_rates):
                raise ValueError("mmpp_rates must be positive and finite")
            if self.mmpp_dwell_s <= 0:
                raise ValueError("mmpp_dwell_s must be positive")
        if self.process == "diurnal" and not 0.0 <= self.diurnal_depth < 1.0:
            raise ValueError("diurnal_depth must be in [0, 1)")
        if self.process == "diurnal" and self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.process == "flash-crowd":
            if self.burst_rate_hz < self.rate_hz:
                raise ValueError("burst_rate_hz must be >= rate_hz")
            if self.burst_duration_s <= 0:
                raise ValueError("flash-crowd needs a positive burst_duration_s")
            if 0 < self.burst_period_s <= self.burst_duration_s:
                raise ValueError("burst_period_s must exceed burst_duration_s")
        lo, hi = self.lifetime_s
        if not (0 < lo <= hi) or not math.isfinite(hi):
            raise ValueError("lifetime_s must be a finite (min, max) with 0 < min <= max")
        if not self.priorities or any(p < 1 for p in self.priorities):
            raise ValueError("priorities must be positive integers")
        if not self.catalogue:
            raise ValueError("catalogue must not be empty")
        for bench, code in self.catalogue:
            try:
                nominal_demand_a7_pus(bench, code)
            except KeyError as exc:
                raise ValueError(str(exc)) from None
        if self.hrm_window_s <= 0:
            raise ValueError("hrm_window_s must be positive")
        if self.max_phase_offset_s < 0:
            raise ValueError("max_phase_offset_s must be non-negative")

    def identity(self) -> Dict[str, object]:
        """JSON-safe identity for checkpoint fingerprints."""
        return asdict(self)

    def mean_demand_a7_pus(self) -> float:
        """Catalogue-average nominal A7 demand of one arrival."""
        return sum(
            nominal_demand_a7_pus(bench, code) for bench, code in self.catalogue
        ) / len(self.catalogue)

    def mean_lifetime_s(self) -> float:
        lo, hi = self.lifetime_s
        return 0.5 * (lo + hi)


def sustainable_rate_hz(chip, config: ArrivalConfig) -> float:
    """Arrival rate whose steady-state offered demand equals chip capacity.

    By Little's law the mean number of concurrent arrivals is
    ``rate * mean_lifetime``, each demanding the catalogue-average A7
    load, so offered demand matches the chip's aggregate max-frequency
    supply at ``capacity / (mean_demand * mean_lifetime)``.  A
    flash-crowd at ``3 x`` this rate is the canonical "3x sustainable
    demand" overload scenario.
    """
    capacity = sum(c.max_capacity_pus for c in chip.clusters)
    return capacity / (config.mean_demand_a7_pus() * config.mean_lifetime_s())


@dataclass(frozen=True)
class ArrivalRecord:
    """One arrival: everything needed to (re-)materialise its task.

    Records are deliberately JSON-trivial -- benchmark identity plus
    scalars -- so checkpoint payloads can carry the spawn history and
    :func:`restore` can rebuild the exact task population of a killed
    run.
    """

    name: str
    benchmark: str
    input_code: str
    priority: int
    arrival_s: float
    lifetime_s: float
    phase_offset_s: float

    def nominal_demand_a7_pus(self) -> float:
        return nominal_demand_a7_pus(self.benchmark, self.input_code)

    def materialize(
        self,
        start_time_s: float,
        qos_factor: float = 1.0,
        hrm_window_s: float = 0.5,
    ) -> Task:
        """Build the runnable task for this arrival.

        ``qos_factor`` < 1 admits the task at a *reduced* QoS target (the
        admission ladder's degraded rung): the whole heart-rate range is
        scaled down, which proportionally shrinks the demand the task
        asserts against the market.
        """
        if not 0.0 < qos_factor <= 1.0:
            raise ValueError("qos_factor must be in (0, 1]")
        task = make_task(
            self.benchmark,
            self.input_code,
            priority=self.priority,
            phase_offset_s=self.phase_offset_s,
            task_name=self.name,
            start_time=start_time_s,
            duration=self.lifetime_s,
        )
        task.hrm = type(task.hrm)(window_s=hrm_window_s)
        if qos_factor != 1.0:
            from dataclasses import replace

            task.profile = replace(
                task.profile, hr_range=task.profile.hr_range.scaled(qos_factor)
            )
        #: Marks the task as stream-spawned: excluded from checkpoint
        #: fingerprints (the spawn history is identity instead) and
        #: eligible for admission-ladder shedding.
        task.from_arrival = True
        return task

    def to_json_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ArrivalRecord":
        return cls(
            name=str(data["name"]),
            benchmark=str(data["benchmark"]),
            input_code=str(data["input_code"]),
            priority=int(data["priority"]),
            arrival_s=float(data["arrival_s"]),
            lifetime_s=float(data["lifetime_s"]),
            phase_offset_s=float(data["phase_offset_s"]),
        )


class ArrivalStream:
    """Incremental, seed-deterministic generator of :class:`ArrivalRecord`.

    One private ``random.Random`` drives thinning, MMPP state dwell and
    per-arrival attribute draws, so the full stream is a pure function
    of ``(config, seed, trace)`` and two streams built alike yield
    identical records in any execution interleaving (the serial vs
    ``--jobs N`` guarantee).
    """

    def __init__(
        self,
        config: ArrivalConfig,
        seed: Optional[int],
        trace: Optional[DemandTrace] = None,
    ):
        self.config = config
        self.seed = seed
        self.trace = trace
        self._rng = random.Random(seed)
        self._cursor_s = 0.0
        self._next: Optional[ArrivalRecord] = None
        #: Arrivals generated so far (names are ``arr<count>.<bench>_<code>``).
        self.count = 0
        # MMPP modulation state: dwell intervals are drawn lazily as the
        # thinning cursor advances (queries are monotonic in time).
        self._mmpp_index = 0
        self._mmpp_until_s = 0.0

    # -- identity ----------------------------------------------------------------
    def identity(self) -> Dict[str, object]:
        return {
            "config": self.config.identity(),
            "seed": self.seed,
            "trace": None if self.trace is None else self.trace.to_json(),
        }

    # -- rate model --------------------------------------------------------------
    def _max_rate_hz(self) -> float:
        cfg = self.config
        if cfg.process == "poisson":
            peak = cfg.rate_hz
        elif cfg.process == "mmpp":
            peak = max(cfg.mmpp_rates)
        elif cfg.process == "diurnal":
            peak = cfg.rate_hz * (1.0 + cfg.diurnal_depth)
        else:  # flash-crowd
            peak = max(cfg.rate_hz, cfg.burst_rate_hz)
        if self.trace is not None:
            peak *= self.trace.max_multiplier
        return peak

    def _in_burst(self, t: float) -> bool:
        cfg = self.config
        if t < cfg.burst_start_s:
            return False
        if cfg.burst_period_s > 0:
            phase = math.fmod(t - cfg.burst_start_s, cfg.burst_period_s)
            return phase < cfg.burst_duration_s
        return t < cfg.burst_start_s + cfg.burst_duration_s

    def _rate_at(self, t: float) -> float:
        cfg = self.config
        if cfg.process == "poisson":
            rate = cfg.rate_hz
        elif cfg.process == "mmpp":
            while t >= self._mmpp_until_s:
                self._mmpp_until_s += self._rng.expovariate(1.0 / cfg.mmpp_dwell_s)
                self._mmpp_index = self._rng.randrange(len(cfg.mmpp_rates))
            rate = cfg.mmpp_rates[self._mmpp_index]
        elif cfg.process == "diurnal":
            rate = cfg.rate_hz * (
                1.0
                + cfg.diurnal_depth
                * math.sin(2.0 * math.pi * t / cfg.diurnal_period_s)
            )
        else:  # flash-crowd
            rate = cfg.burst_rate_hz if self._in_burst(t) else cfg.rate_hz
        if self.trace is not None:
            rate *= self.trace.multiplier_at(t)
        return rate

    # -- generation --------------------------------------------------------------
    def _draw_next(self) -> ArrivalRecord:
        """Advance the thinning sampler to the next accepted arrival."""
        rng = self._rng
        cfg = self.config
        peak = self._max_rate_hz()
        t = self._cursor_s
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self._rate_at(t):
                break
        self._cursor_s = t
        bench, code = cfg.catalogue[rng.randrange(len(cfg.catalogue))]
        priority = cfg.priorities[rng.randrange(len(cfg.priorities))]
        lo, hi = cfg.lifetime_s
        lifetime = rng.uniform(lo, hi)
        offset = (
            rng.uniform(0.0, cfg.max_phase_offset_s)
            if cfg.max_phase_offset_s > 0
            else 0.0
        )
        self.count += 1
        return ArrivalRecord(
            name=f"arr{self.count}.{bench}_{code}",
            benchmark=bench,
            input_code=code,
            priority=priority,
            arrival_s=t,
            lifetime_s=lifetime,
            phase_offset_s=offset,
        )

    def pop_due(self, until_s: float) -> List[ArrivalRecord]:
        """All arrivals with ``arrival_s <= until_s``, in arrival order.

        Generation is incremental: exactly one arrival is held drawn
        ahead, so calling this every tick costs O(arrivals), not
        O(ticks).
        """
        if self._next is None:
            self._next = self._draw_next()
        due: List[ArrivalRecord] = []
        while self._next.arrival_s <= until_s:
            due.append(self._next)
            self._next = self._draw_next()
        return due

    # -- snapshot/restore (checkpointing) ----------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        from ..checkpoint.snapshot import rng_state_to_json

        return {
            "rng_state": rng_state_to_json(self._rng.getstate()),
            "cursor_s": self._cursor_s,
            "count": self.count,
            "mmpp_index": self._mmpp_index,
            "mmpp_until_s": self._mmpp_until_s,
            "next": None if self._next is None else self._next.to_json_dict(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        from ..checkpoint.snapshot import rng_state_from_json

        self._rng.setstate(rng_state_from_json(state["rng_state"]))
        self._cursor_s = state["cursor_s"]
        self.count = state["count"]
        self._mmpp_index = state["mmpp_index"]
        self._mmpp_until_s = state["mmpp_until_s"]
        nxt = state["next"]
        self._next = None if nxt is None else ArrivalRecord.from_json_dict(nxt)
