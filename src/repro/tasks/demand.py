"""Heart-rate to resource-demand conversion (paper Table 4).

A task's demand in Processing Units is derived from its observed heart
rate, its current supply and its target heart rate::

    d_t = target_heart_rate * s_t / current_heart_rate

e.g. a task receiving 500 PUs but only achieving 15 hb/s against a target
of 27 hb/s needs ``27 * 500 / 15 = 900`` PUs (Table 4, phase 1).  When the
observed rate exceeds the range the same formula *lowers* the demand
(Table 4, phase 3).

The paper also notes that in the absence of HRM instrumentation, the time
a task spends runnable in a scheduling epoch (per-entity load tracking)
can be used as a demand proxy; :func:`demand_from_load` provides that path
and the HL baseline uses the same signal for its activeness threshold.
"""

from __future__ import annotations

from .heartbeats import HeartRateRange


def demand_from_heart_rate(
    target_hr: float,
    supply_pus: float,
    current_hr: float,
    fallback_pus: float = 0.0,
) -> float:
    """Demand in PUs to move the observed heart rate onto the target.

    Args:
        target_hr: Desired heart rate (mean of the user's min/max range).
        supply_pus: Supply the task currently receives.
        current_hr: Observed heart rate under that supply.
        fallback_pus: Returned when the observation is unusable (no
            supply or a zero rate, e.g. right after launch or during a
            migration freeze): the caller's best prior estimate.
    """
    if target_hr <= 0:
        raise ValueError("target heart rate must be positive")
    if current_hr <= 0.0 or supply_pus <= 0.0:
        return fallback_pus
    return target_hr * supply_pus / current_hr


def demand_for_range(
    hr_range: HeartRateRange,
    supply_pus: float,
    current_hr: float,
    fallback_pus: float = 0.0,
) -> float:
    """Convenience wrapper taking the user's :class:`HeartRateRange`."""
    return demand_from_heart_rate(
        hr_range.target_hr, supply_pus, current_hr, fallback_pus=fallback_pus
    )


def demand_from_load(
    runnable_fraction: float, supply_pus: float, headroom: float = 1.0
) -> float:
    """Per-entity-load-tracking demand proxy (no HRM available).

    A task runnable for the whole epoch wants at least its current supply
    (and possibly more -- ``headroom`` scales the estimate up to probe);
    a task runnable only a fraction of the epoch needs only that fraction.
    """
    if not 0.0 <= runnable_fraction <= 1.0:
        raise ValueError("runnable fraction must be in [0, 1]")
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    scale = headroom if runnable_fraction >= 1.0 else 1.0
    return runnable_fraction * supply_pus * scale
