"""Per-core-type benchmark profiles.

Heterogeneity enters the task model through differing per-core-type costs:
the same heartbeat (frame, swaption, ...) costs fewer Processing-Unit
seconds on a big out-of-order core than on a LITTLE in-order core, so "a
task would demand more PUs on a small core compared to a big core to
achieve the same application-level performance" (paper section 2).

The paper obtains these per-core-type averages by off-line profiling on
the TC2 board; here the profile tables are part of the synthetic benchmark
definitions (:mod:`repro.tasks.benchmarks`), playing exactly the same role:
they feed the LBT module's cross-cluster speculation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .heartbeats import HeartRateRange
from .phases import ConstantPhase, PhaseTrace

#: Wildcard core type accepted by :meth:`BenchmarkProfile.cost_pu_s_per_beat`.
ANY_CORE_TYPE = "*"


@dataclass(frozen=True)
class BenchmarkProfile:
    """Static description of one benchmark/input combination.

    Attributes:
        name: Benchmark name (e.g. ``"swaptions"``).
        input_label: Input set label (e.g. ``"large"``, ``"vga"``).
        nominal_hr: The heartbeat rate the user asks for (hb/s); the QoS
            range is centred on it.
        hr_range: The user's acceptable heart-rate window.
        cost_pu_s_per_beat_by_type: PU-seconds (i.e. mega-cycles) one
            heartbeat costs on each core type; the measure of
            heterogeneity.  May contain :data:`ANY_CORE_TYPE` as a
            fallback for unknown types.
        phases: Demand-multiplier trace modelling program phases.
        work_limit_factor: Upper bound on how far past its current demand
            a task can usefully run (input-bound applications cannot run
            arbitrarily fast); ``None`` means unbounded (pure batch job).
    """

    name: str
    input_label: str
    nominal_hr: float
    hr_range: HeartRateRange
    cost_pu_s_per_beat_by_type: Dict[str, float]
    phases: PhaseTrace = field(default_factory=ConstantPhase)
    work_limit_factor: Optional[float] = 1.1

    def __post_init__(self) -> None:
        if self.nominal_hr <= 0:
            raise ValueError("nominal heart rate must be positive")
        if not self.cost_pu_s_per_beat_by_type:
            raise ValueError("profile needs at least one core-type cost")
        if any(q <= 0 for q in self.cost_pu_s_per_beat_by_type.values()):
            raise ValueError("per-beat costs must be positive")
        if self.work_limit_factor is not None and self.work_limit_factor < 1.0:
            raise ValueError("work limit factor must be >= 1")

    @property
    def label(self) -> str:
        return f"{self.name}_{self.input_label}"

    def cost_pu_s_per_beat(self, core_type: str, phase_multiplier: float = 1.0) -> float:
        """Cost of one heartbeat on ``core_type``, in PU-seconds.

        Raises ``KeyError`` for unknown core types unless the profile
        carries an :data:`ANY_CORE_TYPE` fallback.
        """
        costs = self.cost_pu_s_per_beat_by_type
        if core_type in costs:
            base = costs[core_type]
        elif ANY_CORE_TYPE in costs:
            base = costs[ANY_CORE_TYPE]
        else:
            raise KeyError(f"{self.label} has no profile for core type {core_type!r}")
        return base * phase_multiplier

    def nominal_demand_pus(self, core_type: str, phase_multiplier: float = 1.0) -> float:
        """Demand (PUs) to hit the target heart rate on ``core_type``.

        This is the off-line-profiled average demand the LBT module uses
        to speculate about migrations to other core types.
        """
        return self.hr_range.target_hr * self.cost_pu_s_per_beat(
            core_type, phase_multiplier
        )

    def speedup(self, fast_type: str, slow_type: str) -> float:
        """Per-PU work advantage of ``fast_type`` over ``slow_type``."""
        return self.cost_pu_s_per_beat(slow_type) / self.cost_pu_s_per_beat(fast_type)


def default_hr_range(nominal_hr: float, tolerance: float = 0.05) -> HeartRateRange:
    """The paper's Figures 7/8 use a [0.95, 1.05] normalised goal window."""
    return HeartRateRange(nominal_hr * (1.0 - tolerance), nominal_hr * (1.0 + tolerance))
