"""Online cross-core-type demand estimation (the paper's future work).

The LBT module needs to predict a task's demand on the *other* core type
before migrating it.  The paper obtains these numbers by off-line
profiling and explicitly flags its replacement as future work: "we plan
to include this estimation model within our price theory based power
management framework to eliminate the off-line profiling step" (section
3.3, citing the authors' CASES'13 power-performance model).

This module implements that step with a purely observational estimator:

* while a task runs, the estimator records its demand-per-target-rate on
  the current core type (an EWMA, so phases average out);
* the cross-type *speedup* is learned from the demand levels observed on
  each type the task has actually visited;
* for never-visited types it falls back to a population prior -- the
  average speedup observed across all tasks (cold-start), and before any
  migrations at all, to a configurable architectural prior.

The result quacks like :meth:`BenchmarkProfile.nominal_demand_pus` and
can replace it inside the PPM governor (``PPMConfig.online_estimation``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class _TypeObservation:
    """EWMA of one task's demand on one core type."""

    demand_pus: float
    samples: int = 1

    def update(self, demand_pus: float, alpha: float) -> None:
        self.demand_pus = (1.0 - alpha) * self.demand_pus + alpha * demand_pus
        self.samples += 1


class OnlineDemandEstimator:
    """Learns per-task, per-core-type demands from runtime observations.

    Args:
        default_speedup: Architectural prior for the per-PU advantage of
            a faster core type over a slower one, used until real
            cross-type observations exist.  The TC2's A15-vs-A7 band is
            1.6-2.1x; 1.8 is the neutral middle.
        alpha: EWMA weight for new demand observations.
        min_samples: Observations on a type before it is trusted over
            the prior.
    """

    def __init__(
        self,
        default_speedup: float = 1.8,
        alpha: float = 0.05,
        min_samples: int = 10,
    ):
        if default_speedup <= 0:
            raise ValueError("speedup prior must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._default_speedup = default_speedup
        self._alpha = alpha
        self._min_samples = min_samples
        self._observations: Dict[Tuple[str, str], _TypeObservation] = {}
        #: Population-level speedup estimates, keyed (fast_type, slow_type).
        self._population: Dict[Tuple[str, str], _TypeObservation] = {}

    # -- recording ------------------------------------------------------------
    def observe(self, task_id: str, core_type: str, demand_pus: float) -> None:
        """Record one demand observation for ``task_id`` on ``core_type``."""
        if demand_pus <= 0:
            return
        key = (task_id, core_type)
        existing = self._observations.get(key)
        if existing is None:
            self._observations[key] = _TypeObservation(demand_pus)
        else:
            existing.update(demand_pus, self._alpha)
        self._update_population(task_id, core_type)

    def _update_population(self, task_id: str, core_type: str) -> None:
        """Fold this task's cross-type ratios into the population prior."""
        mine = {
            ct: obs
            for (tid, ct), obs in self._observations.items()
            if tid == task_id and obs.samples >= self._min_samples
        }
        for other_type, other in mine.items():
            if other_type == core_type:
                continue
            this = mine.get(core_type)
            if this is None:
                continue
            # demand ratio slow/fast == speedup of the fast type.
            if this.demand_pus <= 0 or other.demand_pus <= 0:
                continue
            ratio = other.demand_pus / this.demand_pus
            if ratio >= 1.0:
                key = (core_type, other_type)  # core_type is faster
                value = ratio
            else:
                key = (other_type, core_type)
                value = 1.0 / ratio
            pop = self._population.get(key)
            if pop is None:
                self._population[key] = _TypeObservation(value)
            else:
                pop.update(value, self._alpha)

    # -- queries --------------------------------------------------------------
    def known_demand(self, task_id: str, core_type: str) -> Optional[float]:
        """The learned demand, or ``None`` if unobserved/untrusted."""
        obs = self._observations.get((task_id, core_type))
        if obs is None or obs.samples < self._min_samples:
            return None
        return obs.demand_pus

    def speedup(self, fast_type: str, slow_type: str) -> float:
        """Population speedup estimate of ``fast_type`` over ``slow_type``."""
        pop = self._population.get((fast_type, slow_type))
        if pop is not None:
            return pop.demand_pus
        inverse = self._population.get((slow_type, fast_type))
        if inverse is not None and inverse.demand_pus > 0:
            return 1.0 / inverse.demand_pus
        return self._default_speedup

    def estimate_demand(
        self,
        task_id: str,
        target_type: str,
        current_type: str,
        current_demand_pus: float,
        target_is_faster: bool,
    ) -> float:
        """Predict the demand of ``task_id`` on ``target_type``.

        Preference order: the task's own observations on the target type
        (rescaled to its current level so phases carry over), then the
        population speedup, then the architectural prior.
        """
        own_target = self.known_demand(task_id, target_type)
        own_current = self.known_demand(task_id, current_type)
        if own_target is not None and own_current is not None and own_current > 0:
            # Scale the remembered cross-type ratio by the live demand.
            return current_demand_pus * own_target / own_current
        if target_is_faster:
            return current_demand_pus / self.speedup(target_type, current_type)
        return current_demand_pus * self.speedup(current_type, target_type)
