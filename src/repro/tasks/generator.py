"""Random task generation for the scalability study (paper Table 7).

The paper emulates large systems by "randomly generat[ing] tasks with
varying demands ... supply and demands are randomly chosen between 10-50
PUs, while the maximum supply of the cores in different clusters are
between 350-3000 PUs".  This module produces both full :class:`Task`
objects (for end-to-end simulation) and the lightweight demand/supply
records the LBT-overhead measurement feeds to the constrained core.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .heartbeats import HeartRateRange
from .phases import ConstantPhase
from .profiles import ANY_CORE_TYPE, BenchmarkProfile
from .task import Task


@dataclass(frozen=True)
class SyntheticTaskRecord:
    """Minimal market-relevant view of a task for overhead emulation."""

    name: str
    priority: int
    demand_pus: float
    supply_pus: float
    bid: float


def random_profile(
    rng: random.Random,
    name: str,
    demand_range: Tuple[float, float] = (10.0, 50.0),
    core_types: Sequence[str] = (ANY_CORE_TYPE,),
    nominal_hr: float = 20.0,
) -> BenchmarkProfile:
    """A synthetic profile with a uniformly drawn A-type demand.

    Per-type costs vary by a random 1.5x-2.0x speedup spread so the LBT
    module sees genuine heterogeneity.
    """
    lo, hi = demand_range
    base_demand = rng.uniform(lo, hi)
    base_cost = base_demand / nominal_hr
    costs = {}
    for i, core_type in enumerate(core_types):
        factor = 1.0 if i == 0 else 1.0 / rng.uniform(1.5, 2.0)
        costs[core_type] = base_cost * factor
    return BenchmarkProfile(
        name=name,
        input_label="synthetic",
        nominal_hr=nominal_hr,
        hr_range=HeartRateRange(nominal_hr * 0.95, nominal_hr * 1.05),
        cost_pu_s_per_beat_by_type=costs,
        phases=ConstantPhase(),
        work_limit_factor=None,
    )


def random_tasks(
    count: int,
    seed: Optional[int] = None,
    demand_range: Tuple[float, float] = (10.0, 50.0),
    priority_range: Tuple[int, int] = (1, 8),
    core_types: Sequence[str] = (ANY_CORE_TYPE,),
) -> List[Task]:
    """Generate ``count`` runnable tasks with random demands/priorities."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    tasks = []
    for i in range(count):
        profile = random_profile(
            rng, name=f"synth{i}", demand_range=demand_range, core_types=core_types
        )
        tasks.append(
            Task(
                profile=profile,
                priority=rng.randint(*priority_range),
                name=f"synth{i}",
            )
        )
    return tasks


def random_task_records(
    count: int,
    seed: Optional[int] = None,
    demand_range: Tuple[float, float] = (10.0, 50.0),
    supply_range: Tuple[float, float] = (10.0, 50.0),
    priority_range: Tuple[int, int] = (1, 8),
    bid_range: Tuple[float, float] = (0.5, 2.0),
) -> List[SyntheticTaskRecord]:
    """Generate the flat records the Table 7 overhead harness consumes."""
    rng = random.Random(seed)
    return [
        SyntheticTaskRecord(
            name=f"rec{i}",
            priority=rng.randint(*priority_range),
            demand_pus=rng.uniform(*demand_range),
            supply_pus=rng.uniform(*supply_range),
            bid=rng.uniform(*bid_range),
        )
        for i in range(count)
    ]
