"""Program-phase behaviour: time-varying computational demand.

The paper stresses that "an application may have highly variable
computation requirement due to phase behavior" (section 5.2) and the
savings experiment (Figure 8) relies on an application alternating between
dormant and active phases.  A phase trace maps wall-clock time to a
multiplier applied to the benchmark's nominal cycles-per-heartbeat cost:
a multiplier above one means the same heartbeat momentarily costs more
cycles (an "active"/heavy phase), below one means a dormant phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


class PhaseTrace:
    """Interface: demand multiplier as a function of time."""

    def multiplier_at(self, t: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantPhase(PhaseTrace):
    """A phase-free program: constant demand."""

    multiplier: float = 1.0

    def multiplier_at(self, t: float) -> float:
        return self.multiplier


class PiecewisePhases(PhaseTrace):
    """Explicit (duration, multiplier) segments, optionally repeating.

    Used for scripted scenarios such as the Figure 8 savings experiment
    (x264: long dormant phase followed by a demanding active phase).
    """

    def __init__(self, segments: Sequence[Tuple[float, float]], repeat: bool = False):
        if not segments:
            raise ValueError("need at least one segment")
        if any(duration <= 0 for duration, _ in segments):
            raise ValueError("segment durations must be positive")
        self._segments: List[Tuple[float, float]] = list(segments)
        self._repeat = repeat
        self._total = sum(duration for duration, _ in segments)

    def multiplier_at(self, t: float) -> float:
        if t < 0:
            t = 0.0
        if self._repeat:
            t = math.fmod(t, self._total)
        elif t >= self._total:
            return self._segments[-1][1]
        elapsed = 0.0
        for duration, multiplier in self._segments:
            elapsed += duration
            if t < elapsed:
                return multiplier
        return self._segments[-1][1]

    @property
    def total_duration(self) -> float:
        return self._total


@dataclass(frozen=True)
class SinusoidalPhases(PhaseTrace):
    """Smooth periodic demand variation around 1.0.

    ``multiplier(t) = 1 + amplitude * sin(2*pi*(t + offset)/period)``,
    a convenient stand-in for the gradual scene/workload drift real
    encoders and vision kernels exhibit.
    """

    period_s: float
    amplitude: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def multiplier_at(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.offset_s) / self.period_s
        )


@dataclass(frozen=True)
class SquareWavePhases(PhaseTrace):
    """Alternating low/high demand square wave.

    ``duty`` is the fraction of each period spent in the *high* phase.
    """

    period_s: float
    low: float
    high: float
    duty: float = 0.5
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    def multiplier_at(self, t: float) -> float:
        position = math.fmod(t + self.offset_s, self.period_s) / self.period_s
        if position < 0:
            position += 1.0
        return self.high if position < self.duty else self.low
