"""Synthetic models of the paper's benchmark suite (Table 5).

The paper instruments eight benchmarks from PARSEC, SPEC 2006 and the San
Diego Vision suite with heartbeats.  We cannot run the binaries here, so
each benchmark/input pair becomes a :class:`~repro.tasks.profiles.
BenchmarkProfile` whose numbers were chosen to satisfy the observable
constraints the paper states:

* Per-input A7 demands are sized so the nine Table 6 workload sets fall in
  the paper's light / medium / heavy intensity classes (intensity computed
  against the A7 cluster's aggregate max-frequency supply).
* A15-vs-A7 per-PU speedups sit in the 1.7x-2.0x band typical for the
  out-of-order A15 against the in-order A7 (paper reference [27]).
* Phase behaviour matches each benchmark's character as used in the
  evaluation: swaptions is steady (the stable reference of Figures 7/8),
  x264 is strongly phasic (the savings vehicle of Figure 8), video codecs
  and vision kernels drift with scene content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .phases import ConstantPhase, PhaseTrace, SinusoidalPhases
from .profiles import BenchmarkProfile, default_hr_range
from .task import Task


@dataclass(frozen=True)
class BenchmarkSpec:
    """Raw calibration numbers for one benchmark/input pair."""

    name: str
    input_label: str
    demand_a7_pus: float  #: demand at target heart rate on an A7 core
    speedup_a15: float  #: per-PU work advantage of the A15
    nominal_hr: float  #: target heart rate (hb/s)
    phase_period_s: float  #: 0 disables phase variation
    phase_amplitude: float


def _spec(name, input_label, demand, speedup, hr, period, amplitude) -> BenchmarkSpec:
    return BenchmarkSpec(name, input_label, demand, speedup, hr, period, amplitude)


#: Calibration table, keyed by (benchmark, input).  Input labels follow the
#: paper: v=vga, f=fullhd, n=native, l=large; h264 inputs are the video
#: sequences soccer, bluesky, foreman.
BENCHMARK_SPECS: Dict[Tuple[str, str], BenchmarkSpec] = {
    spec_key: spec
    for spec_key, spec in {
        # PARSEC -- swaptions: Monte-Carlo pricing, very steady.
        ("swaptions", "large"): _spec("swaptions", "large", 420.0, 1.9, 10.0, 0.0, 0.0),
        ("swaptions", "native"): _spec("swaptions", "native", 800.0, 1.9, 10.0, 0.0, 0.0),
        # PARSEC -- bodytrack: per-frame particle filter; the native input
        # has pronounced per-sequence variation.
        ("bodytrack", "large"): _spec("bodytrack", "large", 460.0, 1.8, 30.0, 20.0, 0.15),
        ("bodytrack", "native"): _spec("bodytrack", "native", 850.0, 1.8, 30.0, 20.0, 0.3),
        # PARSEC -- x264: scene-dependent encoder, strongly phasic.
        ("x264", "large"): _spec("x264", "large", 360.0, 1.85, 30.0, 15.0, 0.2),
        ("x264", "native"): _spec("x264", "native", 800.0, 1.85, 30.0, 15.0, 0.3),
        # PARSEC -- blackscholes: embarrassingly regular PDE solver.
        ("blackscholes", "large"): _spec("blackscholes", "large", 300.0, 1.7, 5.0, 0.0, 0.0),
        ("blackscholes", "native"): _spec("blackscholes", "native", 580.0, 1.7, 5.0, 0.0, 0.0),
        # SPEC 2006 -- h264ref on three sequences of rising difficulty.
        ("h264", "soccer"): _spec("h264", "soccer", 300.0, 2.0, 30.0, 12.0, 0.25),
        ("h264", "bluesky"): _spec("h264", "bluesky", 760.0, 2.0, 30.0, 12.0, 0.3),
        ("h264", "foreman"): _spec("h264", "foreman", 740.0, 2.0, 30.0, 12.0, 0.3),
        # Vision -- texture analysis.
        ("texture", "vga"): _spec("texture", "vga", 380.0, 1.75, 25.0, 8.0, 0.1),
        ("texture", "fullhd"): _spec("texture", "fullhd", 700.0, 1.75, 25.0, 8.0, 0.25),
        # Vision -- multi-object counting.
        ("multicnt", "vga"): _spec("multicnt", "vga", 280.0, 1.8, 20.0, 10.0, 0.15),
        ("multicnt", "fullhd"): _spec("multicnt", "fullhd", 1000.0, 1.8, 20.0, 10.0, 0.3),
        # Vision -- feature tracking.
        ("tracking", "vga"): _spec("tracking", "vga", 720.0, 1.9, 25.0, 18.0, 0.2),
        ("tracking", "fullhd"): _spec("tracking", "fullhd", 1100.0, 1.9, 25.0, 18.0, 0.3),
    }.items()
}

#: Short input codes used in the paper's Table 6.
INPUT_CODES = {
    "v": "vga",
    "f": "fullhd",
    "n": "native",
    "l": "large",
    "s": "soccer",
    "b": "bluesky",
    "fo": "foreman",
}


def spec_phases(spec: BenchmarkSpec, phase_offset_s: float = 0.0) -> PhaseTrace:
    """Default phase trace for a spec (constant when period is 0)."""
    if spec.phase_period_s <= 0.0 or spec.phase_amplitude <= 0.0:
        return ConstantPhase()
    return SinusoidalPhases(
        period_s=spec.phase_period_s,
        amplitude=spec.phase_amplitude,
        offset_s=phase_offset_s,
    )


def make_profile(
    name: str,
    input_label: str,
    phases: Optional[PhaseTrace] = None,
    phase_offset_s: float = 0.0,
    hr_tolerance: float = 0.05,
) -> BenchmarkProfile:
    """Build the profile for one benchmark/input pair.

    Args:
        name: Benchmark name from :data:`BENCHMARK_SPECS`.
        input_label: Full input label (``"large"``) or its Table 6 code
            (``"l"``).
        phases: Override the default phase trace (the Figure 8 experiment
            scripts an explicit dormant/active trace for x264).
        phase_offset_s: De-phases multiple instances of the same benchmark.
        hr_tolerance: Half-width of the QoS window around the nominal
            rate; the paper's figures use a [0.95, 1.05] window.
    """
    input_label = INPUT_CODES.get(input_label, input_label)
    try:
        spec = BENCHMARK_SPECS[(name, input_label)]
    except KeyError:
        raise KeyError(f"unknown benchmark/input: {name}/{input_label}") from None
    cost_a7 = spec.demand_a7_pus / spec.nominal_hr
    costs = {"A7": cost_a7, "A15": cost_a7 / spec.speedup_a15}
    return BenchmarkProfile(
        name=spec.name,
        input_label=spec.input_label,
        nominal_hr=spec.nominal_hr,
        hr_range=default_hr_range(spec.nominal_hr, hr_tolerance),
        cost_pu_s_per_beat_by_type=costs,
        phases=phases if phases is not None else spec_phases(spec, phase_offset_s),
    )


def make_task(
    name: str,
    input_label: str,
    priority: int = 1,
    phases: Optional[PhaseTrace] = None,
    phase_offset_s: float = 0.0,
    task_name: Optional[str] = None,
    start_time: float = 0.0,
    duration: Optional[float] = None,
) -> Task:
    """Instantiate a runnable :class:`Task` for a benchmark/input pair.

    ``start_time``/``duration`` bound the task's lifetime for dynamic
    arrival/departure scenarios (tasks run forever by default).
    """
    profile = make_profile(name, input_label, phases=phases, phase_offset_s=phase_offset_s)
    return Task(
        profile=profile,
        priority=priority,
        name=task_name,
        start_time=start_time,
        duration=duration,
    )
