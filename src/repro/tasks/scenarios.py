"""Dynamic workload scenarios: task arrival/departure processes.

The paper's stability analysis explicitly covers churn ("tasks enter/exit
the system", section 3.2.4), but its evaluation uses static six-task
sets.  This module generates the dynamic case: tasks drawn from the
benchmark suite arriving by a Poisson process with bounded lifetimes --
the shape of a real mobile workload -- so churn experiments are one call
away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .benchmarks import BENCHMARK_SPECS, make_task
from .task import Task


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of a Poisson arrival scenario.

    Attributes:
        duration_s: Horizon within which tasks may arrive.
        arrival_rate_hz: Mean arrivals per second.
        lifetime_range_s: Uniform bounds on each task's lifetime.
        priority_range: Uniform integer bounds on priorities.
        catalogue: (benchmark, input) pairs to draw from; defaults to the
            whole Table 5 suite.
        initial_tasks: Tasks already running at t=0.
    """

    duration_s: float = 60.0
    arrival_rate_hz: float = 0.2
    lifetime_range_s: Tuple[float, float] = (10.0, 30.0)
    priority_range: Tuple[int, int] = (1, 3)
    catalogue: Optional[Sequence[Tuple[str, str]]] = None
    initial_tasks: int = 2

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.arrival_rate_hz < 0:
            raise ValueError("duration must be positive, rate non-negative")
        lo, hi = self.lifetime_range_s
        if lo <= 0 or hi < lo:
            raise ValueError("lifetime bounds must satisfy 0 < lo <= hi")
        if self.initial_tasks < 0:
            raise ValueError("initial task count must be non-negative")


def poisson_workload(
    config: Optional[ScenarioConfig] = None, seed: Optional[int] = None
) -> List[Task]:
    """Generate a churning workload under ``config``.

    Deterministic for a given seed.  Task names encode their slot
    (``arr3.x264_l``) so traces stay readable.
    """
    config = config or ScenarioConfig()
    rng = random.Random(seed)
    catalogue = list(config.catalogue or sorted(BENCHMARK_SPECS))
    if not catalogue:
        raise ValueError("catalogue must not be empty")

    tasks: List[Task] = []

    def spawn(index: int, start: float, prefix: str) -> None:
        name, input_label = catalogue[rng.randrange(len(catalogue))]
        lifetime = rng.uniform(*config.lifetime_range_s)
        tasks.append(
            make_task(
                name,
                input_label,
                priority=rng.randint(*config.priority_range),
                task_name=f"{prefix}{index}.{name}_{input_label}",
                start_time=start,
                duration=lifetime,
                phase_offset_s=rng.uniform(0.0, 20.0),
            )
        )

    for i in range(config.initial_tasks):
        spawn(i, 0.0, "init")

    t = 0.0
    index = 0
    if config.arrival_rate_hz > 0:
        while True:
            t += rng.expovariate(config.arrival_rate_hz)
            if t >= config.duration_s:
                break
            spawn(index, t, "arr")
            index += 1
    return tasks


def peak_concurrency(tasks: Sequence[Task], resolution_s: float = 0.5) -> int:
    """Maximum number of simultaneously active tasks (sampled)."""
    if not tasks:
        return 0
    horizon = max(
        (t.start_time + (t.duration or 0.0)) for t in tasks
    ) + resolution_s
    peak = 0
    t = 0.0
    while t <= horizon:
        peak = max(peak, sum(1 for task in tasks if task.is_active(t)))
        t += resolution_s
    return peak
