"""Task and workload substrate.

Simulated stand-in for the paper's instrumented benchmark applications:
heartbeat-emitting tasks with priorities, program phases, per-core-type
cost profiles (the off-line profiling tables), the Table 5 benchmark suite
and the Table 6 workload sets.
"""

from .arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    ArrivalRecord,
    ArrivalStream,
    nominal_demand_a7_pus,
    sustainable_rate_hz,
)
from .benchmarks import BENCHMARK_SPECS, INPUT_CODES, BenchmarkSpec, make_profile, make_task
from .demand import demand_for_range, demand_from_heart_rate, demand_from_load
from .estimation import OnlineDemandEstimator
from .generator import SyntheticTaskRecord, random_profile, random_task_records, random_tasks
from .heartbeats import HeartRateMonitor, HeartRateRange
from .phases import (
    ConstantPhase,
    PhaseTrace,
    PiecewisePhases,
    SinusoidalPhases,
    SquareWavePhases,
)
from .profiles import ANY_CORE_TYPE, BenchmarkProfile, default_hr_range
from .scenarios import ScenarioConfig, peak_concurrency, poisson_workload
from .task import Task
from .traces import DemandTrace, record_trace
from .workloads import (
    WORKLOAD_ORDER,
    WORKLOAD_SETS,
    WorkloadClass,
    build_workload,
    classify_workload,
    little_capacity_pus,
    workload_intensity,
)

__all__ = [
    "ANY_CORE_TYPE",
    "ARRIVAL_PROCESSES",
    "ArrivalConfig",
    "ArrivalRecord",
    "ArrivalStream",
    "BENCHMARK_SPECS",
    "BenchmarkProfile",
    "BenchmarkSpec",
    "ConstantPhase",
    "DemandTrace",
    "HeartRateMonitor",
    "OnlineDemandEstimator",
    "HeartRateRange",
    "INPUT_CODES",
    "PhaseTrace",
    "PiecewisePhases",
    "ScenarioConfig",
    "SinusoidalPhases",
    "SquareWavePhases",
    "SyntheticTaskRecord",
    "Task",
    "WORKLOAD_ORDER",
    "WORKLOAD_SETS",
    "WorkloadClass",
    "build_workload",
    "classify_workload",
    "default_hr_range",
    "demand_for_range",
    "demand_from_heart_rate",
    "demand_from_load",
    "little_capacity_pus",
    "make_profile",
    "make_task",
    "nominal_demand_a7_pus",
    "peak_concurrency",
    "poisson_workload",
    "random_profile",
    "record_trace",
    "random_task_records",
    "random_tasks",
    "sustainable_rate_hz",
    "workload_intensity",
]
