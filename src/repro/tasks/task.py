"""The task model: a prioritised computational entity with QoS goals.

A task (paper section 2) is the unit of scheduling: it runs on exactly one
core at a time, carries a user-assigned priority ``r_t`` (higher is more
important), and expresses its performance through heartbeats.  The task
object here is pure workload state -- placement is owned by the simulator
and market state by the task's agent.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .heartbeats import HeartRateMonitor, HeartRateRange
from .profiles import BenchmarkProfile

_task_counter = itertools.count(1)


class Task:
    """A running instance of a benchmark with a priority and QoS range.

    Attributes:
        name: Unique task name (defaults to ``<profile label>#<n>``).
        profile: The benchmark/input definition driving cost and phases.
        priority: User priority ``r_t`` (positive integer, higher = more
            important).
        start_time: Simulation time at which the task becomes active.
        duration: Active lifetime in seconds (``None`` = runs forever).
    """

    def __init__(
        self,
        profile: BenchmarkProfile,
        priority: int = 1,
        name: Optional[str] = None,
        start_time: float = 0.0,
        duration: Optional[float] = None,
        hrm_window_s: float = 0.5,
    ):
        if priority < 1:
            raise ValueError("priority must be a positive integer")
        self.profile = profile
        self.priority = priority
        self.name = name or f"{profile.label}#{next(_task_counter)}"
        self.start_time = start_time
        self.duration = duration
        self.hrm = HeartRateMonitor(window_s=hrm_window_s)
        #: Cumulative heartbeats emitted so far.
        self.total_beats: float = 0.0
        #: Cumulative PU-seconds of work consumed.
        self.total_work_pu_s: float = 0.0
        #: Supply (PUs) delivered in the most recent tick; written by the
        #: simulator so governors can convert heart rate to demand.
        self.last_supply_pus: float = 0.0
        #: PUs actually consumed in the most recent tick (<= granted when
        #: the task is input-bound).
        self.last_consumed_pus: float = 0.0
        #: True demand computed by the most recent :meth:`consume` call;
        #: lets the dispatcher reuse it without re-evaluating the phase
        #: trace (identical float expression to :meth:`true_demand_pus`).
        self.last_demand_pus: float = 0.0
        #: Simulation time until which the task is frozen by an in-flight
        #: migration (receives no supply).
        self.frozen_until: float = 0.0
        #: Number of migrations this task has undergone.
        self.migrations: int = 0

    # -- identity & QoS -----------------------------------------------------------
    @property
    def hr_range(self) -> HeartRateRange:
        return self.profile.hr_range

    @property
    def target_hr(self) -> float:
        return self.profile.hr_range.target_hr

    def is_active(self, t: float) -> bool:
        """Whether the task exists in the system at time ``t``."""
        if t < self.start_time:
            return False
        if self.duration is not None and t >= self.start_time + self.duration:
            return False
        return True

    def local_time(self, t: float) -> float:
        """Time since the task started (drives its phase trace)."""
        return max(0.0, t - self.start_time)

    # -- cost / demand ------------------------------------------------------------
    def phase_multiplier(self, t: float) -> float:
        return self.profile.phases.multiplier_at(self.local_time(t))

    def cost_pu_s_per_beat(self, core_type: str, t: float) -> float:
        """Current per-heartbeat cost on ``core_type`` at time ``t``."""
        return self.profile.cost_pu_s_per_beat(core_type, self.phase_multiplier(t))

    def true_demand_pus(self, core_type: str, t: float) -> float:
        """Ground-truth demand: PUs needed now to hit the target rate.

        The simulator and the metrics use this; governors must infer the
        same quantity from observed heart rates (Table 4 conversion).
        """
        return self.target_hr * self.cost_pu_s_per_beat(core_type, t)

    def observed_heart_rate(self) -> float:
        return self.hrm.heart_rate()

    # -- execution ----------------------------------------------------------------
    def consume(self, granted_pus: float, core_type: str, t: float, dt: float) -> float:
        """Run for one tick with ``granted_pus`` of supply.

        The task converts PU-seconds into heartbeats at its current
        per-beat cost.  Input-bound tasks cannot run arbitrarily far ahead:
        consumption is capped at ``work_limit_factor`` times the current
        demand.  Returns the PUs actually consumed (defines utilisation).
        """
        if granted_pus < 0 or dt <= 0:
            raise ValueError("granted supply must be >= 0 and dt > 0")
        cost = self.cost_pu_s_per_beat(core_type, t)
        demand = self.target_hr * cost
        self.last_demand_pus = demand
        consumable = granted_pus
        limit = self.profile.work_limit_factor
        if limit is not None:
            consumable = min(consumable, limit * demand)
        beats = consumable * dt / cost
        self.total_beats += beats
        self.total_work_pu_s += consumable * dt
        self.last_supply_pus = granted_pus
        self.last_consumed_pus = consumable
        self.hrm.record(t + dt, self.total_beats)
        return consumable

    def idle_tick(self, t: float, dt: float) -> None:
        """Advance the HRM with zero progress (no supply this tick)."""
        self.last_supply_pus = 0.0
        self.last_consumed_pus = 0.0
        self.hrm.record(t + dt, self.total_beats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name}, prio={self.priority})"
