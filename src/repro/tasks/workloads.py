"""Multiprogrammed workload sets and the intensity metric (paper Table 6).

The paper builds nine six-task workload sets and classifies them by the
*intensity* metric

    intensity = (sum_t d_t^A7 - S_A7^maxfreq) / S_A7^maxfreq

where the supply term is the A7 cluster's aggregate capacity at its
maximum frequency.  ``intensity <= 0`` means the whole set fits in the
LITTLE cluster at max frequency (light); ``0 < intensity <= 0.30`` is
medium; above that is heavy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hw.topology import Chip, Cluster
from .benchmarks import make_task
from .task import Task

#: The nine workload sets of Table 6 as (benchmark, input-code) pairs.
WORKLOAD_SETS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "l1": (
        ("texture", "v"), ("tracking", "v"), ("h264", "s"),
        ("swaptions", "l"), ("x264", "l"), ("blackscholes", "l"),
    ),
    "l2": (
        ("texture", "v"), ("multicnt", "v"), ("h264", "b"),
        ("swaptions", "l"), ("bodytrack", "l"), ("blackscholes", "l"),
    ),
    "l3": (
        ("tracking", "v"), ("multicnt", "v"), ("h264", "s"),
        ("x264", "l"), ("bodytrack", "l"), ("blackscholes", "l"),
    ),
    "m1": (
        ("swaptions", "l"), ("bodytrack", "l"), ("blackscholes", "l"),
        ("texture", "v"), ("tracking", "v"), ("h264", "b"),
    ),
    "m2": (
        ("texture", "v"), ("tracking", "v"), ("h264", "s"),
        ("swaptions", "n"), ("bodytrack", "n"), ("x264", "n"),
    ),
    "m3": (
        ("tracking", "v"), ("multicnt", "v"), ("blackscholes", "n"),
        ("bodytrack", "n"), ("texture", "f"), ("h264", "fo"),
    ),
    "h1": (
        ("h264", "fo"), ("x264", "n"), ("blackscholes", "n"),
        ("texture", "f"), ("swaptions", "n"), ("multicnt", "f"),
    ),
    "h2": (
        ("blackscholes", "n"), ("x264", "n"), ("tracking", "f"),
        ("bodytrack", "n"), ("texture", "f"), ("h264", "s"),
    ),
    "h3": (
        ("h264", "b"), ("h264", "fo"), ("x264", "n"),
        ("swaptions", "n"), ("bodytrack", "n"), ("tracking", "f"),
    ),
}

#: Order used by the comparative figures.
WORKLOAD_ORDER: Tuple[str, ...] = ("l1", "l2", "l3", "m1", "m2", "m3", "h1", "h2", "h3")


@dataclass(frozen=True)
class WorkloadClass:
    """Intensity class boundaries (paper section 5.2)."""

    light_max: float = 0.0
    medium_max: float = 0.30

    def classify(self, intensity: float) -> str:
        if intensity <= self.light_max:
            return "light"
        if intensity <= self.medium_max:
            return "medium"
        return "heavy"


def build_workload(
    set_id: str,
    priority: int = 1,
    phase_stagger_s: float = 3.0,
) -> List[Task]:
    """Instantiate the tasks of one Table 6 workload set.

    All tasks get the same priority, matching the comparative study setup
    ("we set all the tasks to run at the same priority because HPM and HL
    do not take the priorities into consideration").  Instances are
    phase-staggered so identical benchmarks don't move in lockstep.
    """
    try:
        members = WORKLOAD_SETS[set_id]
    except KeyError:
        raise KeyError(
            f"unknown workload set {set_id!r}; choose from {sorted(WORKLOAD_SETS)}"
        ) from None
    return [
        make_task(
            name,
            code,
            priority=priority,
            phase_offset_s=i * phase_stagger_s,
            task_name=f"{set_id}.{name}_{code}",
        )
        for i, (name, code) in enumerate(members)
    ]


def little_capacity_pus(chip: Chip) -> float:
    """Aggregate max-frequency supply of the chip's LITTLE (A7) cluster."""
    littles = [c for c in chip.clusters if c.core_type == "A7"]
    if not littles:
        raise ValueError("chip has no A7 cluster")
    return sum(c.max_capacity_pus for c in littles)


def workload_intensity(tasks: Sequence[Task], chip: Chip, t: float = 0.0) -> float:
    """The paper's intensity metric for a task set on ``chip``.

    Uses the phase-free nominal demand (the off-line profiled average the
    paper's classification is based on), so the class of a set does not
    depend on where in their phases its tasks happen to be.
    """
    capacity = little_capacity_pus(chip)
    total_demand = sum(task.profile.nominal_demand_pus("A7") for task in tasks)
    return (total_demand - capacity) / capacity


def classify_workload(tasks: Sequence[Task], chip: Chip, t: float = 0.0) -> str:
    """Light/medium/heavy classification of a task set."""
    return WorkloadClass().classify(workload_intensity(tasks, chip, t))
