"""Heart Rate Monitor (HRM) infrastructure.

The paper uses Hoffmann et al.'s Application Heartbeats to let tasks
express performance: a task emits a heartbeat every time its critical
kernel completes a unit of work (a frame, a swaption, ...), and the user
prescribes a reference heart-rate range [min_hr, max_hr].  The power
manager's job is to keep the observed rate inside that range with minimal
energy.

This module reproduces the observable side of HRM: a per-task heartbeat
counter plus a sliding-window rate estimator that governors sample.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple


@dataclass(frozen=True)
class HeartRateRange:
    """The user-prescribed QoS target for one task.

    Attributes:
        min_hr: Lowest acceptable heart rate (hb/s).  The paper's miss
            metric counts time with the observed rate *below* this bound.
        max_hr: Highest useful heart rate; running faster wastes energy.
    """

    min_hr: float
    max_hr: float

    def __post_init__(self) -> None:
        if self.min_hr <= 0 or self.max_hr < self.min_hr:
            raise ValueError("need 0 < min_hr <= max_hr")

    @property
    def target_hr(self) -> float:
        """Midpoint of the range -- the setpoint used for demand conversion."""
        return 0.5 * (self.min_hr + self.max_hr)

    #: Relative tolerance on the range boundaries: a rate that equals a
    #: bound up to float rounding (e.g. a work-limited task pinned at
    #: exactly ``1.05 x`` its target) counts as inside.
    _REL_EPS = 1e-9

    def contains(self, heart_rate: float) -> bool:
        lo = self.min_hr * (1.0 - self._REL_EPS)
        hi = self.max_hr * (1.0 + self._REL_EPS)
        return lo <= heart_rate <= hi

    def below(self, heart_rate: float) -> bool:
        """True when the rate misses the QoS floor (the paper's miss test)."""
        return heart_rate < self.min_hr * (1.0 - self._REL_EPS)

    def scaled(self, factor: float) -> "HeartRateRange":
        """A range scaled by ``factor`` (used to normalise plots)."""
        return HeartRateRange(self.min_hr * factor, self.max_hr * factor)


class HeartRateMonitor:
    """Sliding-window heart-rate estimator over a cumulative beat counter.

    ``record(t, total_beats)`` appends the cumulative heartbeat count at
    time ``t``; ``heart_rate()`` reports the average rate over the trailing
    window.  A short window (default 0.5 s) matches the responsiveness the
    framework needs at its ~32 ms bidding period while still smoothing over
    individual scheduling quanta.
    """

    def __init__(self, window_s: float = 0.5):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self._window_s = window_s
        self._samples: Deque[Tuple[float, float]] = deque()

    @property
    def window_s(self) -> float:
        return self._window_s

    def record(self, t: float, total_beats: float) -> None:
        """Record the cumulative beat count ``total_beats`` at time ``t``."""
        if self._samples and t < self._samples[-1][0]:
            raise ValueError("time must be non-decreasing")
        self._samples.append((t, total_beats))
        horizon = t - self._window_s
        # Keep one sample at/before the horizon so the window stays full.
        while len(self._samples) >= 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()

    def heart_rate(self) -> float:
        """Average heart rate (hb/s) over the trailing window."""
        if len(self._samples) < 2:
            return 0.0
        t0, b0 = self._samples[0]
        t1, b1 = self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (b1 - b0) / (t1 - t0)

    def reset(self) -> None:
        self._samples.clear()
