"""Trace-driven phase behaviour: record and replay demand traces.

The synthetic phase generators in :mod:`repro.tasks.phases` are enough
for the paper's experiments, but a reproduction that wants to feed *real*
application behaviour (e.g. frame-cost traces captured from an actual
x264 run) needs a trace format.  A demand trace is a sequence of
``(time_s, multiplier)`` breakpoints; replay interpolates between them
(step or linear) and can loop.

Traces serialise to a trivial JSON shape so they can be captured on one
machine and replayed on another::

    {"name": "x264_bluesky", "interpolation": "linear",
     "points": [[0.0, 1.0], [4.2, 1.6], ...]}
"""

from __future__ import annotations

import bisect
import json
import math
from typing import List, Sequence, Tuple

from .phases import PhaseTrace

_INTERPOLATIONS = ("step", "linear")


class DemandTrace(PhaseTrace):
    """A phase trace backed by explicit (time, multiplier) breakpoints.

    Args:
        points: Breakpoints with strictly increasing times; the first
            point's multiplier also covers any time before it.
        interpolation: ``"step"`` holds each multiplier until the next
            breakpoint; ``"linear"`` ramps between breakpoints.
        loop: Replay the trace cyclically (period = last breakpoint
            time); otherwise the final multiplier holds forever.
        name: Label carried through serialisation.
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        interpolation: str = "step",
        loop: bool = False,
        name: str = "trace",
    ):
        if not points:
            raise ValueError("a trace needs at least one point")
        times = [t for t, _ in points]
        # Validate finiteness explicitly: NaN compares False against
        # everything, so it would sail through the ordering checks below
        # and only blow up later inside bisect during replay.
        if any(not math.isfinite(t) for t in times):
            raise ValueError("trace times must be finite")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace times must be strictly increasing")
        if any(not math.isfinite(m) or m <= 0 for _, m in points):
            raise ValueError("multipliers must be positive and finite")
        if interpolation not in _INTERPOLATIONS:
            raise ValueError(f"interpolation must be one of {_INTERPOLATIONS}")
        if loop and times[-1] <= 0:
            raise ValueError("looping requires a positive trace duration")
        self._times: List[float] = list(times)
        self._values: List[float] = [m for _, m in points]
        self.interpolation = interpolation
        self.loop = loop
        self.name = name

    @property
    def duration_s(self) -> float:
        return self._times[-1]

    @property
    def max_multiplier(self) -> float:
        """Largest multiplier the trace can ever produce.

        Upper-bounds trace-modulated stochastic rates (the arrival
        layer's thinning sampler needs a majorising constant).
        """
        return max(self._values)

    def multiplier_at(self, t: float) -> float:
        if self.loop and self._times[-1] > 0:
            t = math.fmod(t, self._times[-1])
            if t < 0:
                t += self._times[-1]
        if t <= self._times[0]:
            return self._values[0]
        if t >= self._times[-1]:
            return self._values[-1]
        index = bisect.bisect_right(self._times, t) - 1
        if self.interpolation == "step":
            return self._values[index]
        t0, t1 = self._times[index], self._times[index + 1]
        v0, v1 = self._values[index], self._values[index + 1]
        frac = (t - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    # -- serialisation ----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "interpolation": self.interpolation,
                "loop": self.loop,
                "points": [[t, v] for t, v in zip(self._times, self._values)],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "DemandTrace":
        """Parse a serialised trace; raises ``ValueError`` on any bad payload.

        Malformed JSON, a missing/ill-typed ``points`` key and invalid
        breakpoint values all surface as a clean ``ValueError`` (never a
        raw ``KeyError``/``TypeError``), so callers replaying user-supplied
        trace files can report one exception type.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace payload is not valid JSON: {exc}") from None
        if not isinstance(data, dict) or "points" not in data:
            raise ValueError(
                "trace payload must be a JSON object with a 'points' list"
            )
        try:
            points = [(float(t), float(v)) for t, v in data["points"]]
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"trace points must be [time, multiplier] number pairs: {exc}"
            ) from None
        return cls(
            points=points,
            interpolation=data.get("interpolation", "step"),
            loop=bool(data.get("loop", False)),
            name=data.get("name", "trace"),
        )

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def read(cls, path: str) -> "DemandTrace":
        with open(path) as handle:
            return cls.from_json(handle.read())


def record_trace(
    sampler,
    duration_s: float,
    sample_period_s: float = 0.5,
    name: str = "recorded",
    interpolation: str = "linear",
) -> DemandTrace:
    """Sample ``sampler(t) -> multiplier`` into a replayable trace.

    The bridge from any live source (another :class:`PhaseTrace`, a
    measured demand series normalised by its mean, ...) to the trace
    format.
    """
    if duration_s <= 0 or sample_period_s <= 0:
        raise ValueError("duration and period must be positive")
    points = []
    t = 0.0
    while t <= duration_s:
        points.append((t, float(sampler(t))))
        t += sample_period_s
    return DemandTrace(points, interpolation=interpolation, name=name)
